package obs

// CacheCounters is a point-in-time snapshot of the result cache's
// counters, sampled by the avfd_cache_* families at scrape time — the
// cache keeps its own atomically-consistent totals and the registry
// reads them through a func, so the submit hot path pays no double
// accounting.
type CacheCounters struct {
	Hits      int64
	Misses    int64
	Followers int64
	Evicted   int64
	Entries   int
	Inflight  int
}

// CacheMetrics publishes the content-addressed result cache in the
// registry: cumulative hit / miss / single-flight-follower / eviction
// counters, live entry and in-flight gauges, the hit ratio, and a
// microsecond-resolution latency histogram over cache-hit submissions
// (the whole point of the cache is that this histogram lives three
// orders of magnitude below the run-latency one). All methods are
// nil-safe so a server without metrics costs a pointer check.
type CacheMetrics struct {
	hitSeconds *Histogram
}

// NewCacheMetrics registers the avfd_cache_* family, sampling stats for
// the counter/gauge cells. Returns nil when r or stats is nil.
func NewCacheMetrics(r *Registry, stats func() CacheCounters) *CacheMetrics {
	if r == nil || stats == nil {
		return nil
	}
	r.CounterFunc("avfd_cache_hits_total",
		"Submissions served directly from the result cache.",
		func() int64 { return stats().Hits })
	r.CounterFunc("avfd_cache_misses_total",
		"Cache-eligible submissions that had to run (single-flight leaders).",
		func() int64 { return stats().Misses })
	r.CounterFunc("avfd_cache_singleflight_followers_total",
		"Submissions collapsed onto an identical in-flight run.",
		func() int64 { return stats().Followers })
	r.CounterFunc("avfd_cache_evicted_total",
		"Result-cache entries evicted by the capacity cap.",
		func() int64 { return stats().Evicted })
	r.GaugeFunc("avfd_cache_entries",
		"Entries resident in the result cache.",
		func() float64 { return float64(stats().Entries) })
	r.GaugeFunc("avfd_cache_inflight",
		"Single-flight leaders currently running.",
		func() float64 { return float64(stats().Inflight) })
	r.GaugeFunc("avfd_cache_hit_ratio",
		"hits / (hits + misses), cumulative since boot.",
		func() float64 {
			c := stats()
			if c.Hits+c.Misses == 0 {
				return 0
			}
			return float64(c.Hits) / float64(c.Hits+c.Misses)
		})
	return &CacheMetrics{
		// 1 µs … ~67 s: the low buckets resolve the hit path, the high
		// ones catch pathological stalls (lock convoy, GC pause).
		hitSeconds: r.Histogram("avfd_cache_hit_seconds",
			"Submit-to-response latency of cache-hit submissions (seconds).",
			ExpBuckets(1e-6, 4, 14)),
	}
}

// ObserveHit records one cache-hit submission's latency in seconds.
func (m *CacheMetrics) ObserveHit(seconds float64) {
	if m == nil {
		return
	}
	m.hitSeconds.Observe(seconds)
}

// HitLatency summarizes the hit-latency histogram (nil receiver: nil).
func (m *CacheMetrics) HitLatency() *Quantiles {
	if m == nil {
		return nil
	}
	q := m.hitSeconds.Summary()
	return &q
}
