package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("job done", "job", "job-1")
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "hidden") {
		t.Fatal("debug line emitted at info level")
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("json log line %q: %v", line, err)
	}
	if obj["msg"] != "job done" || obj["job"] != "job-1" {
		t.Fatalf("log line = %v", obj)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible")
	if !strings.Contains(buf.String(), "msg=visible") {
		t.Fatalf("text log = %q", buf.String())
	}

	// Defaults: empty format/level mean text at info.
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]string{{"xml", "info"}, {"text", "loud"}} {
		if _, err := NewLogger(&buf, bad[0], bad[1]); err == nil {
			t.Fatalf("NewLogger(%q, %q) accepted", bad[0], bad[1])
		}
	}
}
