package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Exposition-format conformance: the Prometheus text output (0.0.4)
// must satisfy the invariants scrapers rely on — every family carries
// HELP and TYPE, every histogram series emits a +Inf bucket plus _sum
// and _count with count == the +Inf cumulative value and monotone
// cumulative buckets, and label values escape backslash, newline, and
// double-quote exactly.

var (
	// One sample line: name, optional label block of well-formed
	// name="escaped value" pairs (values may contain any character via
	// escaping, including '}' and ','), then the value.
	sampleLine = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
			`(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})?` +
			` (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	labelPair = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

func conformanceRegistry() *Registry {
	r := NewRegistry()
	r.Counter("conf_total", "plain counter").Add(3)
	r.Gauge("conf_gauge", "plain gauge").Set(-1.5)
	r.CounterVec("conf_labeled_total", "labeled counter", "kind").With("a\\b\n\"c\"").Inc()

	h := r.Histogram("conf_seconds", "plain histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10) // +Inf bucket

	hv := r.HistogramVec("conf_labeled_seconds", "labeled histogram", []float64{1}, "route", "class")
	hv.With("/v1/jobs/{id}", "weird\"label\\with\nstuff").Observe(0.2)
	hv.With("/v1/stats", "plain").Observe(2)

	// An empty histogram must still expose its full shape.
	r.Histogram("conf_empty_seconds", "never observed", []float64{1})
	return r
}

func TestExpositionConformance(t *testing.T) {
	r := conformanceRegistry()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	type famState struct{ help, typ bool }
	fams := map[string]*famState{}
	var lines []string
	for _, ln := range strings.Split(out, "\n") {
		if ln == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(ln, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if fams[name] == nil {
				fams[name] = &famState{}
			}
			fams[name].help = true
			continue
		}
		if rest, ok := strings.CutPrefix(ln, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if fams[name] == nil || !fams[name].help {
				t.Errorf("TYPE before HELP for %s", name)
			}
			fams[name].typ = true
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown TYPE %q for %s", typ, name)
			}
			continue
		}
		lines = append(lines, ln)
	}
	for name, st := range fams {
		if !st.help || !st.typ {
			t.Errorf("family %s missing HELP or TYPE", name)
		}
	}

	// Every sample line must match the exposition grammar, and each
	// label pair inside it must be well-formed with balanced escaping.
	for _, ln := range lines {
		m := sampleLine.FindStringSubmatch(ln)
		if m == nil {
			t.Errorf("sample line does not match exposition grammar: %q", ln)
			continue
		}
		if m[2] != "" {
			inner := m[2][1 : len(m[2])-1]
			for _, pair := range splitLabelPairs(inner) {
				if !labelPair.MatchString(pair) {
					t.Errorf("malformed label pair %q in line %q", pair, ln)
				}
			}
		}
	}

	// Histogram invariants, per series.
	for _, fam := range []string{"conf_seconds", "conf_labeled_seconds", "conf_empty_seconds"} {
		series := histogramSeries(t, lines, fam)
		if len(series) == 0 {
			t.Errorf("histogram %s emitted no series", fam)
		}
		for key, s := range series {
			if s.inf == nil {
				t.Errorf("%s%s: no le=\"+Inf\" bucket", fam, key)
				continue
			}
			if s.count == nil || s.sum == nil {
				t.Errorf("%s%s: missing _count or _sum", fam, key)
				continue
			}
			if *s.inf != *s.count {
				t.Errorf("%s%s: +Inf bucket %d != _count %d", fam, key, *s.inf, *s.count)
			}
			for i := 1; i < len(s.buckets); i++ {
				if s.buckets[i] < s.buckets[i-1] {
					t.Errorf("%s%s: cumulative buckets not monotone: %v", fam, key, s.buckets)
				}
			}
		}
	}

	// Escaping: the tricky label value must appear exactly once in its
	// escaped form and the raw newline must never reach the output.
	if !strings.Contains(out, `kind="a\\b\n\"c\""`) {
		t.Errorf("label escaping wrong; exposition:\n%s", out)
	}
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "weird") && !strings.Contains(ln, `weird\"label\\with\nstuff`) {
			t.Errorf("histogram label not escaped: %q", ln)
		}
	}
}

// histogramSeries groups a family's sample lines by their non-le label
// signature.
type histSeries struct {
	buckets []int64
	inf     *int64
	count   *int64
	sum     *float64
}

func histogramSeries(t *testing.T, lines []string, fam string) map[string]*histSeries {
	t.Helper()
	out := map[string]*histSeries{}
	get := func(key string) *histSeries {
		if out[key] == nil {
			out[key] = &histSeries{}
		}
		return out[key]
	}
	for _, ln := range lines {
		m := sampleLine.FindStringSubmatch(ln)
		if m == nil {
			continue
		}
		name, labels, val := m[1], m[2], m[3]
		switch name {
		case fam + "_bucket":
			le, rest := extractLE(labels)
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Errorf("bucket value not an integer: %q", ln)
				continue
			}
			s := get(rest)
			if le == "+Inf" {
				s.inf = &n
			}
			s.buckets = append(s.buckets, n)
		case fam + "_count":
			n, _ := strconv.ParseInt(val, 10, 64)
			get(labels).count = &n
		case fam + "_sum":
			f, _ := strconv.ParseFloat(val, 64)
			get(labels).sum = &f
		}
	}
	return out
}

// extractLE pulls the le label out of a label block, returning its
// value and the block with le removed (the series signature).
func extractLE(labels string) (le, rest string) {
	inner := labels[1 : len(labels)-1]
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}

// splitLabelPairs splits a label block body on commas outside quoted
// values (label values may themselves contain commas).
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestConformanceJSONMirrorsText(t *testing.T) {
	// The JSON snapshot must agree with the text exposition on
	// histogram totals (+Inf cumulative == count == sum of per-bucket
	// counts).
	r := conformanceRegistry()
	for _, fam := range r.Snapshot() {
		if fam.Type != "histogram" {
			continue
		}
		for _, s := range fam.Series {
			var perBucket int64
			for _, b := range s.Buckets {
				perBucket += b.Count
			}
			if s.Count == nil || perBucket != *s.Count {
				t.Errorf("%s: per-bucket sum %d != count %v", fam.Name, perBucket, s.Count)
			}
			if s.Buckets[len(s.Buckets)-1].LE != "+Inf" {
				t.Errorf("%s: last JSON bucket is %q, want +Inf", fam.Name, s.Buckets[len(s.Buckets)-1].LE)
			}
		}
	}
	_ = fmt.Sprintf // keep fmt if assertions above change
}
