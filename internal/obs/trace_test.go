package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"avfsim/internal/isa"
	"avfsim/internal/pipeline"
)

func failureRec(s pipeline.Structure, interval int, latency int64) Injection {
	return Injection{
		Structure: s, Entry: 3, Interval: interval,
		InjectCycle: 1000, ConcludeCycle: 2000,
		Outcome: OutcomeFailure, Latency: latency,
		FailSeq: 42, FailClass: isa.ClassStore, ErrBits: 2,
	}
}

func TestOutcomeNames(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeFailure: "failure", OutcomeMasked: "masked", OutcomePending: "pending",
	} {
		if o.String() != want {
			t.Fatalf("outcome %d = %q, want %q", o, o, want)
		}
	}
	if !strings.Contains(Outcome(99).String(), "99") {
		t.Fatalf("bad outcome string %q", Outcome(99))
	}
}

func TestInjectionCountersAggregate(t *testing.T) {
	r := NewRegistry()
	ic := NewInjectionCounters(r)
	ic.RecordInjection(failureRec(pipeline.StructIQ, 0, 37))
	ic.RecordInjection(failureRec(pipeline.StructIQ, 0, 5))
	ic.RecordInjection(Injection{Structure: pipeline.StructIQ, Outcome: OutcomeMasked})
	ic.RecordInjection(Injection{Structure: pipeline.StructReg, Outcome: OutcomePending, ErrBits: 7})

	if got := ic.Outcomes(pipeline.StructIQ, OutcomeFailure); got != 2 {
		t.Fatalf("iq failures = %d, want 2", got)
	}
	text := expo(r)
	mustContain(t, text,
		`avfd_injections_total{structure="iq",outcome="failure"} 2`,
		`avfd_injections_total{structure="iq",outcome="masked"} 1`,
		`avfd_injections_total{structure="reg",outcome="pending"} 1`,
		`avfd_errbit_population_hwm{structure="reg"} 7`,
		`avfd_injection_latency_cycles_count{structure="iq"} 2`,
	)
	// Latency histogram only sees failures.
	mustContain(t, text, `avfd_injection_latency_cycles_count{structure="reg"} 0`)
}

func TestJobTracerRecordsAndNDJSON(t *testing.T) {
	tr := NewJobTracer(nil, 0)
	tr.RecordInjection(failureRec(pipeline.StructFXU, 1, 12))
	tr.RecordInjection(Injection{
		Structure: pipeline.StructReg, Entry: 9, Interval: 0,
		InjectCycle: 500, ConcludeCycle: 1500, Outcome: OutcomeMasked,
	})

	recs, dropped := tr.Snapshot()
	if len(recs) != 2 || dropped != 0 {
		t.Fatalf("snapshot = %d recs, %d dropped", len(recs), dropped)
	}

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []TraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	f := lines[0]
	if f.Structure != "fxu" || f.Outcome != "failure" || f.LatencyCycles != 12 ||
		f.FailClass != "store" || f.FailSeq != 42 || f.Interval != 1 {
		t.Fatalf("failure record = %+v", f)
	}
	m := lines[1]
	if m.Structure != "reg" || m.Outcome != "masked" || m.LatencyCycles != 0 || m.FailClass != "" {
		t.Fatalf("masked record = %+v", m)
	}
}

func TestJobTracerCapAndDroppedLine(t *testing.T) {
	tr := NewJobTracer(nil, 2)
	for i := 0; i < 5; i++ {
		tr.RecordInjection(Injection{Structure: pipeline.StructIQ, Outcome: OutcomeMasked})
	}
	recs, dropped := tr.Snapshot()
	if len(recs) != 2 || dropped != 3 {
		t.Fatalf("snapshot = %d recs, %d dropped; want 2, 3", len(recs), dropped)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 records + dropped summary", len(lines))
	}
	var tail map[string]int64
	if err := json.Unmarshal([]byte(lines[2]), &tail); err != nil || tail["dropped"] != 3 {
		t.Fatalf("dropped summary = %q (err %v)", lines[2], err)
	}
}

func TestJobTracerForwardsToCounters(t *testing.T) {
	r := NewRegistry()
	ic := NewInjectionCounters(r)
	tr := NewJobTracer(ic, 1) // cap of 1: aggregation must still see every record
	tr.RecordInjection(failureRec(pipeline.StructFPU, 0, 3))
	tr.RecordInjection(failureRec(pipeline.StructFPU, 0, 4))
	if got := ic.Outcomes(pipeline.StructFPU, OutcomeFailure); got != 2 {
		t.Fatalf("aggregated failures = %d, want 2 (cap must not drop aggregation)", got)
	}
}
