//go:build race

package avfsim

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive assertions skip themselves when it does.
const raceEnabled = true
