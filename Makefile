# Developer entry points. `make check` is the tier-1 gate plus the race
# detector (the scheduler/server subsystem is concurrent; keep it clean).

GO ?= go

.PHONY: all build test vet race check cover bench report daemon clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

# cover gates the observability layer at >= 80% statement coverage: it is
# the one subsystem whose breakage (a silent scrape regression) tests
# elsewhere would not catch.
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total%"; \
	awk "BEGIN {exit !($$total >= 80.0)}" || { echo "FAIL: internal/obs coverage $$total% < 80%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

report:
	$(GO) run ./cmd/avfreport

daemon:
	$(GO) run ./cmd/avfd

clean:
	$(GO) clean ./...
