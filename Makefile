# Developer entry points. `make check` is the tier-1 gate plus the race
# detector (the scheduler/server subsystem is concurrent; keep it clean).

GO ?= go

# Profile-guided optimization: when the committed profile exists, build
# every binary with it. Regenerate with `make pgo` after hot-path changes.
PGOFILE := default.pgo
GOFLAGS_PGO := $(if $(wildcard $(PGOFILE)),-pgo=$(abspath $(PGOFILE)),)

.PHONY: all build test vet race check cover bench bench-json pgo report daemon clean

all: check

build:
	$(GO) build $(GOFLAGS_PGO) ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

# cover gates the observability layer at >= 80% statement coverage: it is
# the one subsystem whose breakage (a silent scrape regression) tests
# elsewhere would not catch.
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total%"; \
	awk "BEGIN {exit !($$total >= 80.0)}" || { echo "FAIL: internal/obs coverage $$total% < 80%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json appends the next BENCH_<n>.json performance report at the
# repo root and prints regressions against the previous one.
bench-json:
	$(GO) run $(GOFLAGS_PGO) ./cmd/avfbench

# pgo regenerates the committed PGO profile from a standard avfreport
# run (fig3 exercises the full fused pipeline+softarch+estimator path).
pgo:
	$(GO) run ./cmd/avfreport -scale quick -seed 1 -parallel 1 -only fig3 -cpuprofile $(PGOFILE) >/dev/null
	@echo "wrote $(PGOFILE)"

report:
	$(GO) run ./cmd/avfreport

daemon:
	$(GO) run ./cmd/avfd

clean:
	$(GO) clean ./...
