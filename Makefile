# Developer entry points. `make check` is the tier-1 gate plus the race
# detector (the scheduler/server subsystem is concurrent; keep it clean).

GO ?= go

.PHONY: all build test vet race check bench report daemon clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

report:
	$(GO) run ./cmd/avfreport

daemon:
	$(GO) run ./cmd/avfd

clean:
	$(GO) clean ./...
