//go:build !race

package avfsim

const raceEnabled = false
