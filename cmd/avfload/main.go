// Command avfload replays a workload spec against a live avfd
// endpoint: it expands the spec into a deterministic submit schedule,
// drives the submissions on a real or accelerated clock, tracks each
// accepted job to its terminal state, and scores the run against the
// spec's embedded SLO assertions.
//
// Exit codes: 0 all assertions pass, 1 assertion failures, 2 bad
// usage or spec, 3 run errors (target unreachable, timeline write).
//
// The schedule is a pure function of (spec, seed): -schedule writes it
// as NDJSON without contacting a server, so two invocations with the
// same inputs can be byte-compared — the CI determinism gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"avfsim/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("avfload", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "workload spec file (YAML or JSON, required)")
		target   = fs.String("target", "http://localhost:8080", "avfd base URL")
		seed     = fs.Uint64("seed", 0, "override the spec seed (0 = use the spec's)")
		accel    = fs.Float64("accel", 1, "time acceleration: spec seconds / accel = wall seconds")
		timeline = fs.String("timeline", "", "write the outcome timeline as NDJSON to this file (- = stdout)")
		schedOut = fs.String("schedule", "", "write the submit schedule as NDJSON and exit (no server needed)")
		report   = fs.String("report", "", "write the summary report as JSON to this file")
		track    = fs.Bool("track", true, "poll accepted jobs to their terminal state")
		drain    = fs.Duration("drain-timeout", 60*time.Second, "max wait for tracked jobs after the last submit")
		poll     = fs.Duration("poll", 200*time.Millisecond, "job state poll interval")
		quiet    = fs.Bool("q", false, "suppress the human summary (assertions still print)")
	)
	fs.Parse(os.Args[1:])
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "avfload: -spec is required")
		return 2
	}
	if *accel <= 0 {
		fmt.Fprintln(os.Stderr, "avfload: -accel must be > 0")
		return 2
	}
	spec, err := load.LoadFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfload:", err)
		return 2
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	schedule, err := spec.Schedule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfload:", err)
		return 2
	}
	if *schedOut != "" {
		if err := writeSchedule(*schedOut, spec, schedule); err != nil {
			fmt.Fprintln(os.Stderr, "avfload:", err)
			return 3
		}
		if !*quiet {
			fmt.Printf("avfload: %s: %d arrivals over %.1fs (seed %d)\n",
				spec.Name, len(schedule), spec.DurationSeconds, spec.Seed)
		}
		return 0
	}

	d := &driver{
		spec:     spec,
		schedule: schedule,
		target:   *target,
		accel:    *accel,
		track:    *track,
		poll:     *poll,
		drain:    *drain,
		client:   &http.Client{Timeout: 30 * time.Second},
	}
	outs, runErr := d.run(context.Background())
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "avfload:", runErr)
		return 3
	}
	if *timeline != "" {
		if err := writeTimeline(*timeline, outs); err != nil {
			fmt.Fprintln(os.Stderr, "avfload:", err)
			return 3
		}
	}
	rep := load.Summarize(outs)
	results := spec.Evaluate(rep)
	// Failed assertions name their offending jobs and traces, both in
	// the JSON report and on the console — the bridge from "SLO broke"
	// to the server-side spans of the jobs that broke it.
	load.AttachViolators(results, outs)
	if *report != "" {
		full := struct {
			*load.Report
			Assertions []load.AssertResult `json:"assertions,omitempty"`
		}{rep, results}
		if err := writeJSONFile(*report, full); err != nil {
			fmt.Fprintln(os.Stderr, "avfload:", err)
			return 3
		}
	}
	if !*quiet {
		fmt.Printf("workload %s: %d scheduled submissions, seed %d, accel %gx\n\n",
			spec.Name, len(schedule), spec.Seed, *accel)
		fmt.Print(rep.Table())
	}
	if len(results) > 0 {
		fmt.Println()
		for _, r := range results {
			fmt.Println(r.String())
			for i, v := range r.Violators {
				if i == 3 && !*quiet {
					fmt.Printf("        ... %d more violators (see -report)\n", len(r.Violators)-i)
					break
				}
				state := v.Final
				if state == "" {
					state = v.Status
				}
				fmt.Printf("        violator seq=%d job=%s trace=%s (%s)\n", v.Seq, v.JobID, v.TraceID, state)
			}
		}
	}
	if fails := load.Failures(results); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "avfload: %d of %d SLO assertions failed\n", len(fails), len(results))
		return 1
	}
	return 0
}

// driver executes one run.
type driver struct {
	spec     *load.Spec
	schedule []load.Arrival
	target   string
	accel    float64
	track    bool
	poll     time.Duration
	drain    time.Duration
	client   *http.Client
}

// run submits the schedule and returns one outcome per arrival.
func (d *driver) run(ctx context.Context) ([]load.Outcome, error) {
	// Probe the target before committing to the run.
	resp, err := d.client.Get(d.target + "/v1/healthz")
	if err != nil {
		return nil, fmt.Errorf("target %s unreachable: %w", d.target, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	outs := make([]load.Outcome, len(d.schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range d.schedule {
		ar := &d.schedule[i]
		// Wall-clock instant for this arrival under acceleration.
		due := start.Add(time.Duration(ar.T / d.accel * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return outs[:i], ctx.Err()
			}
		}
		wg.Add(1)
		go func(idx int, ar load.Arrival) {
			defer wg.Done()
			outs[idx] = d.submit(ctx, ar, start)
		}(i, *ar)
	}
	wg.Wait()
	return outs, nil
}

// submit posts one job and (optionally) tracks it to a terminal state.
func (d *driver) submit(ctx context.Context, ar load.Arrival, start time.Time) load.Outcome {
	c := &d.spec.Clients[ar.Client]
	out := load.Outcome{
		Seq:        ar.Seq,
		Client:     c.ID,
		Class:      c.Class().String(),
		ClientSeq:  ar.ClientSeq,
		ScheduledT: ar.T,
		SubmitT:    time.Since(start).Seconds(),
	}
	body := d.spec.Body(ar.Client, ar.ClientSeq)
	// Every submission carries a driver-minted W3C trace, deterministic
	// in (spec seed, seq): a failed SLO assertion can then name the
	// exact traces to pull from /v1/jobs/{id}/spans, and reruns with the
	// same seed reproduce the same IDs.
	tp := traceparentFor(d.spec.Seed, ar.Seq)
	out.TraceID = tp[3:35]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		d.target+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		out.Status = load.StatusError
		out.Err = err.Error()
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tp)
	t0 := time.Now()
	resp, err := d.client.Do(req)
	out.AcceptMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		out.Status = load.StatusError
		out.Err = err.Error()
		return out
	}
	defer resp.Body.Close()
	out.HTTP = resp.StatusCode
	switch resp.StatusCode {
	case http.StatusAccepted:
		out.Status = load.StatusAccepted
		var acc struct {
			ID     string `json:"id"`
			State  string `json:"state"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil || acc.ID == "" {
			out.Status = load.StatusError
			out.Err = fmt.Sprintf("202 without job id: %v", err)
			return out
		}
		out.JobID = acc.ID
		out.Cached = acc.Cached
		if acc.State == "done" {
			// A result-cache hit comes back already terminal: the submit
			// round trip is the whole job, so there is nothing to track.
			out.Final = acc.State
			out.CompleteMS = out.AcceptMS
		} else if d.track {
			d.trackJob(ctx, &out, t0)
		}
	case http.StatusTooManyRequests:
		out.Status = load.StatusRejected
		io.Copy(io.Discard, resp.Body)
	default:
		out.Status = load.StatusError
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		out.Err = fmt.Sprintf("http %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return out
}

// traceparentFor mints the deterministic W3C traceparent of one
// scheduled arrival: two splitmix64 streams keyed by (seed, seq) give
// the 128-bit trace ID, a third gives the parent span ID.
func traceparentFor(seed uint64, seq int) string {
	hi := splitmix64(seed ^ (0x9e3779b97f4a7c15 * uint64(seq+1)))
	lo := splitmix64(hi + 0xbf58476d1ce4e5b9)
	sp := splitmix64(lo + 0x94d049bb133111eb)
	if hi == 0 && lo == 0 {
		lo = 1 // all-zero trace IDs are invalid per the spec
	}
	if sp == 0 {
		sp = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", hi, lo, sp)
}

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// trackJob polls the job until terminal or the drain deadline.
func (d *driver) trackJob(ctx context.Context, out *load.Outcome, submitted time.Time) {
	deadline := time.Now().Add(time.Duration(d.spec.DurationSeconds/d.accel*float64(time.Second)) + d.drain)
	for {
		resp, err := d.client.Get(d.target + "/v1/jobs/" + out.JobID)
		if err == nil {
			var st struct {
				State  string `json:"state"`
				Error  string `json:"error"`
				Cached bool   `json:"cached"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil {
				switch st.State {
				case "done", "failed", "canceled", "shed":
					out.Final = st.State
					out.CompleteMS = float64(time.Since(submitted)) / float64(time.Millisecond)
					if st.Cached {
						out.Cached = true
					}
					if st.Error != "" {
						out.Err = st.Error
					}
					return
				}
			}
		}
		if time.Now().After(deadline) {
			return // stays untracked
		}
		select {
		case <-time.After(d.poll):
		case <-ctx.Done():
			return
		}
	}
}

// writeSchedule writes the expanded schedule as NDJSON: a header line
// with (name, seed, arrival count), then one line per arrival.
func writeSchedule(path string, spec *load.Spec, schedule []load.Arrival) error {
	w, closeFn, err := outWriter(path)
	if err != nil {
		return err
	}
	defer closeFn()
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{
		"name": spec.Name, "seed": spec.Seed, "arrivals": len(schedule),
	}); err != nil {
		return err
	}
	for i := range schedule {
		a := schedule[i]
		if err := enc.Encode(map[string]any{
			"seq": a.Seq, "t": a.T,
			"client": spec.Clients[a.Client].ID, "client_seq": a.ClientSeq,
			"class": spec.Clients[a.Client].Class().String(),
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeTimeline(path string, outs []load.Outcome) error {
	w, closeFn, err := outWriter(path)
	if err != nil {
		return err
	}
	defer closeFn()
	sorted := append([]load.Outcome(nil), outs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	return load.WriteNDJSON(w, sorted)
}

func writeJSONFile(path string, v any) error {
	w, closeFn, err := outWriter(path)
	if err != nil {
		return err
	}
	defer closeFn()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// outWriter opens path for writing; "-" is stdout.
func outWriter(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
