// Command avfbench measures the simulator's cycle-loop performance under
// four standardized scenarios and appends a machine-readable report
// (BENCH_<n>.json) to the repo's benchmark history:
//
//	bare       pipeline.Step alone — the raw timing-simulator hot loop
//	softarch   + the offline reference analyzer on the pipeline hooks
//	estimator  + the online AVF estimator (inject/propagate/conclude)
//	fused      + both, wired exactly like internal/experiment.Run
//
// With -flight two more scenarios measure the flight recorder's
// marginal cost: estimator+flight and fused+flight. With -wal two more
// measure the durable-store checkpoint overhead — every per-interval
// estimate appended to a CRC-framed fsync'd WAL, exactly as avfd
// -data-dir persists it: estimator+wal and fused+wal. With -span two
// more measure request-span recording — one interval span per completed
// estimate into a bounded ring, the write avfd makes when -spans is on:
// estimator+span and fused+span. With -microtel two more measure the
// microarchitectural telemetry collector — occupancy residency sampling,
// coverage-map sink writes, and Wilson intervals, the cost of a job's
// "microtel": true — estimator+microtel and fused+microtel. With -sched
// two scheduler-dispatch
// scenarios compare single-class submission against a four-SLO-class
// mix (ns per dispatched task): sched-single and sched-classes. With
// -cache two result-cache scenarios measure the admission fast path —
// spec canonicalization + SHA-256 keying (cache-key) and keying + hit
// lookup against a populated cache (cache-hit), in ns per op. With
// -lanes 8,32,64 the estimator and fused scenarios are re-measured with
// the multi-lane injection engine (estimator+lanes<k>, fused+lanes<k>);
// the inj/sec column — injections concluded per wall-second — is the
// lane engine's headline throughput, with the plain estimator scenario
// as the lanes=1 baseline.
//
// Each scenario simulates the same workload for a fixed cycle budget
// after a warm-up, reporting ns/cycle, cycles/sec and allocation rates.
// Reports are stamped with the build's VCS revision (when present) so
// history entries attribute to commits.
// When a previous BENCH_<n>.json exists the new report is compared
// against it and regressions beyond -threshold are listed;
// -fail-on-regress turns them into a non-zero exit for CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"avfsim/internal/cache"
	"avfsim/internal/config"
	"avfsim/internal/core"
	"avfsim/internal/flight"
	"avfsim/internal/microtel"
	"avfsim/internal/perfstat"
	"avfsim/internal/pipeline"
	"avfsim/internal/sched"
	"avfsim/internal/softarch"
	"avfsim/internal/span"
	"avfsim/internal/store"
	"avfsim/internal/workload"
)

// Estimation parameters for the estimator/fused scenarios. They match
// BenchmarkFigure3ErrorStats-scale runs: one injection every M cycles,
// N injections per estimate.
const (
	benchM = 1000
	benchN = 100
)

type scenarioDef struct {
	name      string
	softarch  bool
	estimator bool
	flight    bool
	wal       bool
	span      bool
	microtel  bool
	// lanes > 1 runs the estimator's multi-lane injection engine with
	// that many concurrent experiments (see core.Options.Lanes).
	lanes int
}

var scenarios = []scenarioDef{
	{name: "bare"},
	{name: "softarch", softarch: true},
	{name: "estimator", estimator: true},
	{name: "fused", softarch: true, estimator: true},
}

// flightScenarios measure the flight recorder's marginal cost over the
// matching base scenarios. Only run with -flight so the default report
// shape (and its regression comparison) stays stable; perfstat.Compare
// skips scenarios absent from either report.
var flightScenarios = []scenarioDef{
	{name: "estimator+flight", estimator: true, flight: true},
	{name: "fused+flight", softarch: true, estimator: true, flight: true},
}

// walScenarios measure the durable checkpoint path's marginal cost over
// the matching base scenarios: each completed per-interval estimate is
// appended (and fsync'd) to a store WAL in a temporary directory, the
// same write avfd -data-dir makes. Only run with -wal for the same
// report-shape stability reason as -flight.
var walScenarios = []scenarioDef{
	{name: "estimator+wal", estimator: true, wal: true},
	{name: "fused+wal", softarch: true, estimator: true, wal: true},
}

// spanScenarios measure the request-span path's marginal cost over the
// matching base scenarios: every completed per-interval estimate is
// recorded as a child span in a bounded ring, the same write avfd makes
// per interval when -spans is on. Only run with -span, for the same
// report-shape stability reason as -flight.
var spanScenarios = []scenarioDef{
	{name: "estimator+span", estimator: true, span: true},
	{name: "fused+span", softarch: true, estimator: true, span: true},
}

// microtelScenarios measure the microarchitectural telemetry
// collector's marginal cost over the matching base scenarios: every
// concluded injection lands in the coverage map, every injection
// boundary samples the occupancy histograms, and every completed
// estimate computes a Wilson interval — the writes avfd makes when a
// job runs with "microtel": true. Only run with -microtel, for the
// same report-shape stability reason as -flight.
var microtelScenarios = []scenarioDef{
	{name: "estimator+microtel", estimator: true, microtel: true},
	{name: "fused+microtel", softarch: true, estimator: true, microtel: true},
}

// cacheScenarios measure the content-addressed result cache's admission
// fast path (reusing the ns/cycle column; "cycles" = operations):
// cache-key is spec canonicalization + SHA-256 keying alone — the cost
// every submission pays when the cache is on — and cache-hit adds the
// Begin lookup against a populated cache, the whole server-side
// decision for a duplicate submission before the replay write. Only run
// with -cache, for the same report-shape stability reason as -flight.
var cacheScenarios = []struct {
	name string
	hit  bool
}{
	{name: "cache-key"},
	{name: "cache-hit", hit: true},
}

// schedScenarios measure the scheduler's dispatch path: no-op tasks
// pushed through the worker pool, reported as ns per dispatched task
// (reusing the ns/cycle column; "cycles" = tasks). sched-single keeps
// every task in one class — the pre-class-queue behavior — while
// sched-classes spreads submissions round-robin across all four SLO
// tiers, so comparing the two bounds the per-class-queue overhead.
// Only run with -sched, for the same report-shape stability reason as
// -flight.
var schedScenarios = []struct {
	name    string
	classes []sched.Class
}{
	{name: "sched-single", classes: []sched.Class{sched.ClassStandard}},
	{name: "sched-classes", classes: []sched.Class{
		sched.ClassCritical, sched.ClassStandard, sched.ClassSheddable, sched.ClassBatch,
	}},
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced cycle budget for CI smoke runs")
		cycles    = flag.Int64("cycles", 2_000_000, "measured cycles per scenario")
		warmup    = flag.Int64("warmup", 200_000, "warm-up cycles before measuring")
		bench     = flag.String("workload", "mesa", "workload profile to drive")
		seed      = flag.Uint64("seed", 0, "workload trace seed")
		outDir    = flag.String("out", ".", "directory holding BENCH_<n>.json history")
		threshold = flag.Float64("threshold", 0.20, "regression threshold vs previous report")
		failRegr  = flag.Bool("fail-on-regress", false, "exit nonzero when a regression is flagged")
		doFlight  = flag.Bool("flight", false, "also measure estimator/fused with the flight recorder attached")
		doWAL     = flag.Bool("wal", false, "also measure estimator/fused with per-interval WAL checkpointing attached")
		doSpan    = flag.Bool("span", false, "also measure estimator/fused with per-interval request-span recording attached")
		doMicro   = flag.Bool("microtel", false, "also measure estimator/fused with the microarchitectural telemetry collector attached")
		doSched   = flag.Bool("sched", false, "also measure scheduler dispatch: single-class vs per-SLO-class queues (ns per task)")
		doCache   = flag.Bool("cache", false, "also measure the result cache's admission path: spec keying and hit lookup (ns per op)")
		doLanes   = flag.String("lanes", "", "comma-separated lane counts >1 (e.g. 8,32,64): also measure estimator/fused with the multi-lane injection engine")
	)
	flag.Parse()
	if *quick {
		*cycles = 300_000
		*warmup = 50_000
	}

	rep := &perfstat.Report{
		Schema:    perfstat.SchemaVersion,
		Benchmark: *bench,
		Quick:     *quick,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	rep.VCSRevision, rep.VCSTime, rep.VCSModified = perfstat.BuildVCS()
	fmt.Printf("avfbench: %s, %d cycles/scenario (+%d warm-up), %s %s/%s\n",
		*bench, *cycles, *warmup, rep.GoVersion, rep.GOOS, rep.GOARCH)
	if rep.VCSRevision != "" {
		dirty := ""
		if rep.VCSModified {
			dirty = " (dirty)"
		}
		fmt.Printf("avfbench: revision %s%s %s\n", rep.VCSRevision, dirty, rep.VCSTime)
	}
	defs := append([]scenarioDef(nil), scenarios...)
	if *doFlight {
		defs = append(defs, flightScenarios...)
	}
	if *doWAL {
		defs = append(defs, walScenarios...)
	}
	if *doSpan {
		defs = append(defs, spanScenarios...)
	}
	if *doMicro {
		defs = append(defs, microtelScenarios...)
	}
	if *doLanes != "" {
		lanes, err := parseLaneCounts(*doLanes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfbench: -lanes: %v\n", err)
			os.Exit(1)
		}
		// Lane scenarios ride on estimator and fused; lanes=1 IS the base
		// estimator/fused scenario (the classic engine), so the axis only
		// adds the multi-lane points.
		for _, k := range lanes {
			defs = append(defs,
				scenarioDef{name: fmt.Sprintf("estimator+lanes%d", k), estimator: true, lanes: k},
				scenarioDef{name: fmt.Sprintf("fused+lanes%d", k), softarch: true, estimator: true, lanes: k},
			)
		}
	}
	fmt.Printf("%-18s %12s %14s %12s %12s %8s %12s\n",
		"scenario", "ns/cycle", "cycles/sec", "allocs/cyc", "bytes/cyc", "ipc", "inj/sec")
	for _, def := range defs {
		sc, err := runScenario(def, *bench, *seed, *warmup, *cycles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfbench: %s: %v\n", def.name, err)
			os.Exit(1)
		}
		rep.Scenarios = append(rep.Scenarios, *sc)
		fmt.Printf("%-18s %12.1f %14.0f %12.4f %12.1f %8.4f %12.0f\n",
			sc.Name, sc.NsPerCycle, sc.CyclesPerSec,
			sc.AllocsPerCycle, sc.BytesPerCycle, sc.IPC, sc.InjPerSec)
	}
	if *doSched {
		// Dispatch is µs-scale per task where the cycle loop is ns-scale
		// per cycle, so the task budget is a fraction of the cycle budget.
		tasks := *cycles / 20
		if tasks < 10_000 {
			tasks = 10_000
		}
		for _, def := range schedScenarios {
			sc, err := runSchedScenario(def.name, def.classes, tasks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "avfbench: %s: %v\n", def.name, err)
				os.Exit(1)
			}
			rep.Scenarios = append(rep.Scenarios, *sc)
			fmt.Printf("%-18s %12.1f %14.0f %12.4f %12.1f %8.4f %12s\n",
				sc.Name, sc.NsPerCycle, sc.CyclesPerSec,
				sc.AllocsPerCycle, sc.BytesPerCycle, sc.IPC, "-")
		}
	}
	if *doCache {
		// Keying is µs-scale per op like scheduler dispatch; same budget.
		ops := *cycles / 20
		if ops < 10_000 {
			ops = 10_000
		}
		for _, def := range cacheScenarios {
			sc := runCacheScenario(def.name, def.hit, *bench, ops)
			rep.Scenarios = append(rep.Scenarios, *sc)
			fmt.Printf("%-18s %12.1f %14.0f %12.4f %12.1f %8.4f %12s\n",
				sc.Name, sc.NsPerCycle, sc.CyclesPerSec,
				sc.AllocsPerCycle, sc.BytesPerCycle, sc.IPC, "-")
		}
	}

	// Find the comparison baseline BEFORE writing the new report so the
	// fresh file cannot match itself.
	prev, prevRep, err := perfstat.LastMatching(*outDir, *bench, *quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfbench: %v\n", err)
		os.Exit(1)
	}
	next, _, err := perfstat.NextPath(*outDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfbench: %v\n", err)
		os.Exit(1)
	}
	if err := perfstat.Write(next, rep); err != nil {
		fmt.Fprintf(os.Stderr, "avfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("avfbench: wrote %s\n", next)

	if prevRep == nil {
		fmt.Println("avfbench: no comparable previous report; nothing to compare")
		return
	}
	regs := perfstat.Compare(prevRep, rep, *threshold)
	if len(regs) == 0 {
		fmt.Printf("avfbench: no regressions vs %s (threshold %.0f%%)\n",
			prev, *threshold*100)
		return
	}
	fmt.Printf("avfbench: %d regression(s) vs %s:\n", len(regs), prev)
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	if *failRegr {
		os.Exit(1)
	}
}

// runScenario builds a fresh pipeline for def, warms it up, and measures
// the steady-state cycle loop.
func runScenario(def scenarioDef, bench string, seed uint64, warmup, cycles int64) (*perfstat.Scenario, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	cfg := config.Default()
	p, err := pipeline.New(&cfg, prof.MustSource(seed))
	if err != nil {
		return nil, err
	}

	var est *core.Estimator
	var ref *softarch.Analyzer
	hooks := pipeline.Hooks{}
	if def.estimator {
		opt := core.Options{M: benchM, N: benchN, Lanes: def.lanes}
		if def.wal {
			// The checkpoint write avfd -data-dir makes on every completed
			// per-interval estimate: a CRC-framed, fsync'd WAL append.
			dir, err := os.MkdirTemp("", "avfbench-wal-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				return nil, err
			}
			defer st.Close()
			if err := st.AppendSpec("bench", map[string]any{"benchmark": bench}, time.Now()); err != nil {
				return nil, err
			}
			opt.OnInterval = func(e core.Estimate) {
				pt := struct {
					Structure  string  `json:"structure"`
					Interval   int     `json:"interval"`
					AVF        float64 `json:"avf"`
					Failures   int     `json:"failures"`
					Injections int     `json:"injections"`
				}{e.Structure.String(), e.Interval, e.AVF, e.Failures, e.Injections}
				if err := st.AppendInterval("bench", &pt); err != nil {
					panic(fmt.Sprintf("avfbench: wal append: %v", err))
				}
			}
		}
		if def.span {
			// The span write avfd makes per completed interval estimate:
			// a child span under the job root, three attributes, into a
			// bounded ring sized like the daemon default.
			rec := span.NewRecorder(span.DefaultCapacity)
			trace := span.MintTraceID()
			root := rec.StartAt(trace, span.SpanID{}, "job", time.Now())
			defer root.End("ok")
			opt.OnIntervalSpan = func(e core.Estimate, wallStart, wallEnd time.Time) {
				a := rec.StartAt(trace, root.ID(), "interval", wallStart)
				a.SetJob("bench", "standard")
				a.SetAttr("structure", e.Structure.String())
				a.SetAttr("interval", strconv.Itoa(e.Interval))
				a.SetAttr("avf", strconv.FormatFloat(e.AVF, 'g', 6, 64))
				a.EndAt("ok", wallEnd)
			}
		}
		if def.microtel {
			// The telemetry writes avfd makes per "microtel": true job:
			// coverage-map sink on every concluded injection, occupancy
			// sample at every injection boundary, Wilson interval per
			// completed estimate.
			mt := microtel.New(microtel.Config{})
			mt.Bind(p, pipeline.PaperStructures, def.lanes)
			opt.Sink = mt
			opt.OnConcludeScan = mt.SampleOccupancy
			userInterval := opt.OnInterval
			opt.OnInterval = func(e core.Estimate) {
				mt.RecordEstimate(e.Structure, e.Interval, e.Failures, e.Injections)
				if userInterval != nil {
					userInterval(e)
				}
			}
		}
		est, err = core.NewEstimator(p, opt)
		if err != nil {
			return nil, err
		}
		if def.lanes > 1 {
			// Lane layout: retired masks carry lane bits only the
			// estimator's lane table can attribute.
			hooks.OnFailureMask = est.HandleFailureMask
		} else {
			hooks.OnFailure = est.HandleFailure
		}
	}
	if def.softarch {
		ref, err = softarch.NewAnalyzer(p, softarch.Options{
			IntervalCycles: benchM * benchN,
		})
		if err != nil {
			return nil, err
		}
		rh := ref.Hooks()
		hooks.OnRetire = rh.OnRetire
		hooks.OnRegWrite = rh.OnRegWrite
		hooks.OnRegRead = rh.OnRegRead
		hooks.OnTLBAccess = rh.OnTLBAccess
	}
	if def.estimator || def.softarch {
		p.SetHooks(hooks)
	}
	if def.flight {
		// A large ring so steady-state recording (not drop-chasing)
		// dominates the measurement.
		p.SetRecorder(flight.New(1 << 20))
	}

	step := func() error {
		if !p.Step() {
			return fmt.Errorf("trace ended at cycle %d", p.Cycle())
		}
		if est != nil {
			est.Tick()
		}
		return nil
	}
	for i := int64(0); i < warmup; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	retired0 := p.Retired()
	var inj0 int64
	if est != nil {
		inj0 = est.ConcludedInjections()
	}
	start := time.Now()
	for i := int64(0); i < cycles; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	sc := &perfstat.Scenario{
		Name:           def.name,
		Cycles:         cycles,
		WallNs:         wall.Nanoseconds(),
		NsPerCycle:     float64(wall.Nanoseconds()) / float64(cycles),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(cycles),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cycles),
		IPC:            float64(p.Retired()-retired0) / float64(cycles),
	}
	if sc.NsPerCycle > 0 {
		sc.CyclesPerSec = 1e9 / sc.NsPerCycle
	}
	if est != nil {
		sc.Injections = est.ConcludedInjections() - inj0
		if secs := wall.Seconds(); secs > 0 {
			sc.InjPerSec = float64(sc.Injections) / secs
		}
	}
	return sc, nil
}

// parseLaneCounts parses the -lanes axis: comma-separated counts, each
// in (1, MaxLanes].
func parseLaneCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if k <= 1 || k > pipeline.MaxLanes {
			return nil, fmt.Errorf("lane count %d out of range (1, %d]", k, pipeline.MaxLanes)
		}
		out = append(out, k)
	}
	return out, nil
}

// benchCacheEntries sizes the populated cache for the hit scenario —
// the avfd -cache-max default, so lookups run at production occupancy.
const benchCacheEntries = 4096

// runCacheScenario measures the result cache's admission fast path as
// ns per operation (in the ns/cycle column; Cycles = ops, IPC left 0).
// Every op canonicalizes a spec and computes its SHA-256 key — the work
// handleSubmit adds when the cache is on; with hit=true the op also
// runs Begin against a cache populated to the daemon's default
// capacity, cycling over resident keys so every lookup lands.
func runCacheScenario(name string, hit bool, bench string, ops int64) *perfstat.Scenario {
	spec := func(i int64) cache.Canonical {
		return cache.Canonical{
			Benchmark: bench, Scale: 0.02, Seed: uint64(i),
			M: benchM, N: benchN, Intervals: 10,
		}
	}
	c := cache.New(benchCacheEntries)
	if hit {
		for i := int64(0); i < benchCacheEntries; i++ {
			c.Put(spec(i).Key(), i)
		}
	}

	op := func(i int64) {
		k := spec(i % benchCacheEntries).Key()
		if hit {
			if out := c.Begin(k, "bench", nil); !out.Hit {
				panic(fmt.Sprintf("avfbench: %s: op %d missed a populated cache", name, i))
			}
		}
	}
	for i := int64(0); i < ops/10; i++ { // warm-up
		op(i)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := int64(0); i < ops; i++ {
		op(i)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	sc := &perfstat.Scenario{
		Name:           name,
		Cycles:         ops,
		WallNs:         wall.Nanoseconds(),
		NsPerCycle:     float64(wall.Nanoseconds()) / float64(ops),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
	}
	if sc.NsPerCycle > 0 {
		sc.CyclesPerSec = 1e9 / sc.NsPerCycle
	}
	return sc
}

// runSchedScenario pushes `tasks` no-op jobs through a worker pool,
// cycling submissions over the given classes, and reports dispatch
// cost as ns per task (in the ns/cycle column; Cycles = tasks, IPC is
// meaningless here and left 0). SubmitWait absorbs queue-full
// backpressure so the measurement covers the steady-state
// submit→dispatch→finish path, not the rejection path.
func runSchedScenario(name string, classes []sched.Class, tasks int64) (*perfstat.Scenario, error) {
	pool := sched.New(sched.Options{Workers: runtime.GOMAXPROCS(0), QueueCap: 1024})
	defer pool.Shutdown(context.Background())
	noop := func(ctx context.Context, progress func(v any)) error { return nil }
	ctx := context.Background()

	// Warm-up: fill the dispatch path before measuring.
	warm := tasks / 10
	for i := int64(0); i < warm; i++ {
		if _, err := pool.SubmitWait(ctx, noop, sched.WithClass(classes[i%int64(len(classes))])); err != nil {
			return nil, err
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last *sched.Task
	for i := int64(0); i < tasks; i++ {
		t, err := pool.SubmitWait(ctx, noop, sched.WithClass(classes[i%int64(len(classes))]))
		if err != nil {
			return nil, err
		}
		last = t
	}
	if last != nil {
		if err := last.Wait(ctx); err != nil {
			return nil, err
		}
	}
	// Drain fully so wall time covers every dispatched task.
	for pool.Stats().Queued > 0 || pool.Stats().Running > 0 {
		time.Sleep(100 * time.Microsecond)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	sc := &perfstat.Scenario{
		Name:           name,
		Cycles:         tasks,
		WallNs:         wall.Nanoseconds(),
		NsPerCycle:     float64(wall.Nanoseconds()) / float64(tasks),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(tasks),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(tasks),
	}
	if sc.NsPerCycle > 0 {
		sc.CyclesPerSec = 1e9 / sc.NsPerCycle
	}
	return sc, nil
}
