// Command avfsim runs one benchmark on the simulated processor with the
// online AVF estimator, the SoftArch-style reference, and the utilization
// baseline attached, and prints the per-interval AVF estimates.
//
// Usage:
//
//	avfsim -bench mesa [-structs iq,reg,fxu,fpu] [-m 1000] [-n 1000]
//	       [-intervals 20] [-scale 0.05] [-seed 1] [-random-entry]
//	       [-random-schedule] [-multiplex] [-due]
//	       [-trace file.avft] [-csv out.csv] [-json out.json]
//
// Structures: iq (issue queues), reg (integer register file), fxu, fpu,
// fpreg (FP register file), lsu, dtlb, itlb.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"avfsim/internal/due"
	"avfsim/internal/experiment"
	"avfsim/internal/pipeline"
	"avfsim/internal/stats"
	"avfsim/internal/trace"
	"avfsim/internal/workload"
)

// writeFile writes a result with the given encoder.
func writeFile(path string, res *experiment.Result, enc func(w io.Writer, res *experiment.Result) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	bench := flag.String("bench", "mesa", "benchmark name ("+strings.Join(workload.Names(), ", ")+")")
	structsFlag := flag.String("structs", "iq,reg,fxu,fpu", "comma-separated structures to monitor")
	m := flag.Int64("m", 1000, "cycles to wait per injection (M)")
	n := flag.Int("n", 1000, "injections per estimate (N)")
	intervals := flag.Int("intervals", 20, "estimation intervals to run")
	scale := flag.Float64("scale", 0.05, "workload phase-length scale (1 = paper)")
	seed := flag.Uint64("seed", 1, "workload seed")
	randomEntry := flag.Bool("random-entry", false, "random instead of round-robin entry selection")
	randomSchedule := flag.Bool("random-schedule", false, "random instead of fixed injection intervals")
	traceFile := flag.String("trace", "", "run a recorded trace file (looped) instead of a named benchmark")
	csvOut := flag.String("csv", "", "also write per-interval series as CSV to this file")
	jsonOut := flag.String("json", "", "also write the full result as JSON to this file")
	showDUE := flag.Bool("due", false, "also print the pi-bit false-DUE report (Weaver-style)")
	multiplex := flag.Bool("multiplex", false, "single-error hardware mode: one live error rotates across structures")
	flag.Parse()

	var structures []pipeline.Structure
	for _, name := range strings.Split(*structsFlag, ",") {
		s, err := pipeline.ParseStructure(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(2)
		}
		structures = append(structures, s)
	}

	rc := experiment.RunConfig{
		Benchmark:      *bench,
		Scale:          *scale,
		Seed:           *seed,
		M:              *m,
		N:              *n,
		Intervals:      *intervals,
		Structures:     structures,
		RandomEntry:    *randomEntry,
		RandomSchedule: *randomSchedule,
		Multiplex:      *multiplex,
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(1)
		}
		insts, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: reading %s: %v\n", *traceFile, err)
			os.Exit(1)
		}
		if len(insts) == 0 {
			fmt.Fprintf(os.Stderr, "avfsim: %s holds no instructions\n", *traceFile)
			os.Exit(1)
		}
		rc.Source = trace.NewLoop(insts)
		rc.Benchmark = *traceFile
	}
	res, err := experiment.Run(rc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
		os.Exit(1)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, res, experiment.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, res, experiment.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark %s: %s\n", res.Benchmark, res.Stats)
	fmt.Printf("estimation interval = M*N = %d cycles\n\n", res.M*int64(res.N))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "ivl\t")
	for _, ss := range res.Series {
		fmt.Fprintf(tw, "%s est\t%s real\t", ss.Structure, ss.Structure)
	}
	fmt.Fprintln(tw)
	for i := 0; i < res.Intervals; i++ {
		fmt.Fprintf(tw, "%d\t", i)
		for _, ss := range res.Series {
			fmt.Fprintf(tw, "%.3f\t%.3f\t", ss.Online[i], ss.Reference[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println()
	for _, ss := range res.Series {
		errs := stats.AbsErrors(ss.Online, ss.Reference)
		fmt.Printf("%-6s abs error: %s\n", ss.Structure, stats.Summarize(errs))
	}
	if res.DroppedMarks > 0 {
		fmt.Printf("note: reference dropped %d ACE marks (chain truncation)\n", res.DroppedMarks)
	}
	if *showDUE {
		reports, err := due.FromEstimator(res.Estimator)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\npi-bit view (Weaver-style): machine checks a pi bit avoids")
		if err := due.Write(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "avfsim: %v\n", err)
			os.Exit(1)
		}
	}
}
