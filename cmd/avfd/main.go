// Command avfd is the online-AVF estimation daemon: an HTTP service
// that runs benchmark × estimator simulations on a bounded worker pool
// and streams per-interval AVF estimates to clients while each workload
// executes — the paper's continuous-monitoring use case as a service.
//
// Usage:
//
//	avfd [-addr :8080] [-workers N] [-queue N] [-drain 30s]
//	     [-log-format text|json] [-log-level info] [-pprof]
//
// Quickstart (see README.md for more):
//
//	avfd &
//	curl -s localhost:8080/v1/jobs -d '{"benchmark":"mesa","scale":0.05,"n":500,"intervals":20}'
//	curl -N localhost:8080/v1/jobs/job-1/stream       # live NDJSON estimates
//	curl -N localhost:8080/v1/jobs/job-1/trace        # per-injection lifecycle trace
//	curl -s localhost:8080/v1/jobs/job-1              # status + final series
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1    # cancel
//	curl -s localhost:8080/v1/stats                   # scheduler counters + queue saturation
//	curl -s localhost:8080/metrics                    # Prometheus text exposition
//	curl -s localhost:8080/v1/metrics                 # the same registry as JSON
//
// With -pprof, the standard profiling endpoints are served under
// /debug/pprof/ (CPU profile, heap, goroutines, execution trace).
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains running
// jobs for up to -drain, then cancels whatever is left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avfsim/internal/obs"
	"avfsim/internal/sched"
	"avfsim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 503)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfd: %v\n", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	pool := sched.New(sched.Options{Workers: *workers, QueueCap: *queue, Metrics: reg})
	srv := server.New(pool, server.WithMetrics(reg), server.WithLogger(logger))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "pprof", *pprofOn)

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first; in-flight streams follow the
	// jobs they watch.
	go httpSrv.Shutdown(drainCtx)
	// If the deadline passes, cancel every remaining job so the pool's
	// workers can come home.
	go func() {
		<-drainCtx.Done()
		srv.CancelAll()
	}()
	if err := pool.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("pool shutdown failed", "error", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain deadline hit; canceled remaining jobs")
	}
	httpSrv.Close()
	logger.Info("bye")
}
