// Command avfd is the online-AVF estimation daemon: an HTTP service
// that runs benchmark × estimator simulations on a bounded worker pool
// and streams per-interval AVF estimates to clients while each workload
// executes — the paper's continuous-monitoring use case as a service.
//
// Usage:
//
//	avfd [-addr :8080] [-workers N] [-queue N] [-drain 30s]
//
// Quickstart (see README.md for more):
//
//	avfd &
//	curl -s localhost:8080/v1/jobs -d '{"benchmark":"mesa","scale":0.05,"n":500,"intervals":20}'
//	curl -N localhost:8080/v1/jobs/job-1/stream       # live NDJSON estimates
//	curl -s localhost:8080/v1/jobs/job-1              # status + final series
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1    # cancel
//	curl -s localhost:8080/v1/stats                   # scheduler counters
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains running
// jobs for up to -drain, then cancels whatever is left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avfsim/internal/sched"
	"avfsim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 503)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	pool := sched.New(sched.Options{Workers: *workers, QueueCap: *queue})
	srv := server.New(pool)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("avfd: listening on %s (%d workers, queue %d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("avfd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("avfd: shutting down, draining jobs for up to %v", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first; in-flight streams follow the
	// jobs they watch.
	go httpSrv.Shutdown(drainCtx)
	// If the deadline passes, cancel every remaining job so the pool's
	// workers can come home.
	go func() {
		<-drainCtx.Done()
		srv.CancelAll()
	}()
	if err := pool.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("avfd: pool shutdown: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("avfd: drain deadline hit; canceled remaining jobs")
	}
	httpSrv.Close()
	fmt.Println("avfd: bye")
}
