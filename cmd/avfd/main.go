// Command avfd is the online-AVF estimation daemon: an HTTP service
// that runs benchmark × estimator simulations on a bounded worker pool
// and streams per-interval AVF estimates to clients while each workload
// executes — the paper's continuous-monitoring use case as a service.
//
// Usage:
//
//	avfd [-addr :8080] [-workers N] [-queue N] [-drain 30s]
//	     [-data-dir DIR] [-compact-bytes 0] [-cache-max 4096]
//	     [-retention 0] [-retention-max 0] [-deadline 0]
//	     [-max-body 1048576] [-read-header-timeout 5s] [-read-timeout 30s]
//	     [-write-timeout 30s] [-idle-timeout 2m] [-stream-write-timeout 30s]
//	     [-spans] [-span-cap 16384] [-slo-config FILE]
//	     [-log-format text|json] [-log-level info] [-pprof]
//
// Quickstart (see README.md for more):
//
//	avfd -data-dir /var/lib/avfd &
//	curl -s localhost:8080/v1/jobs -d '{"benchmark":"mesa","scale":0.05,"n":500,"intervals":20}'
//	curl -N localhost:8080/v1/jobs/job-1/stream       # live NDJSON estimates
//	curl -N localhost:8080/v1/jobs/job-1/trace        # per-injection lifecycle trace
//	curl -s localhost:8080/v1/jobs/job-1              # status + final series
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1    # cancel
//	curl -s localhost:8080/v1/stats                   # scheduler counters + queue saturation
//	curl -N localhost:8080/v1/jobs/job-1/spans        # request spans of the job's trace
//	curl -s localhost:8080/v1/traces                  # trace summaries (min_dur/class/state filters)
//	curl -s localhost:8080/v1/slo                     # per-class error budgets + burn rates
//	curl -s localhost:8080/metrics                    # Prometheus text exposition
//	curl -s localhost:8080/v1/metrics                 # the same registry as JSON
//
// Every job carries a W3C trace context: submit with a traceparent
// header (or "traceparent" spec field) to stitch the job into your
// distributed trace, or let the daemon mint one. -spans=false turns
// recording off; -slo-config FILE replaces the built-in per-class
// objectives with a JSON object of the form
// {"critical":{"latency_seconds":60,"target":0.999}, ...}.
//
// With -data-dir, jobs are durable: specs, state transitions, every
// per-interval estimate, and final series are appended to a CRC-framed
// fsync'd WAL (compacted into a snapshot as it grows). After a crash or
// restart the daemon replays the log, restores terminal jobs read-only,
// and re-enqueues interrupted ones — the simulator is deterministic in
// (spec, seed), so a resumed job emits the remaining intervals exactly
// as the uninterrupted run would have.
//
// Completed runs land in a content-addressed result cache (-cache-max):
// resubmitting an identical spec — up to default materialization, the
// simulator is a pure function of (spec, seed) — replays the original
// NDJSON stream byte-identically in microseconds without executing, and
// concurrent identical submissions collapse onto a single simulation
// (single-flight). Cache entries persist through the WAL when the
// daemon is durable, so the cache survives restarts.
//
// With -pprof, the standard profiling endpoints are served under
// /debug/pprof/ (CPU profile, heap, goroutines, execution trace).
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains running
// jobs for up to -drain, then cancels whatever is left (persisted as
// "interrupted" — resumed at next boot when durable) and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avfsim/internal/obs"
	"avfsim/internal/sched"
	"avfsim/internal/server"
	"avfsim/internal/span"
	"avfsim/internal/store"
)

// loadObjectives reads the per-class SLO objectives: the built-in
// defaults, or the JSON object in path when given.
func loadObjectives(path string) (map[string]span.Objective, error) {
	objs := span.DefaultObjectives()
	if path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		objs = map[string]span.Objective{}
		if err := json.Unmarshal(b, &objs); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
	}
	if err := span.ValidateObjectives(objs); err != nil {
		return nil, err
	}
	return objs, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	dataDir := flag.String("data-dir", "", "durable job store directory (empty = in-memory only)")
	compactBytes := flag.Int64("compact-bytes", 0, "compact the WAL into a snapshot past this size (0 = 4 MiB default, negative disables)")
	cacheMax := flag.Int("cache-max", 4096, "result-cache capacity in completed runs (0 = unbounded, negative disables the cache)")
	retention := flag.Duration("retention", 0, "evict terminal jobs older than this (0 = keep)")
	retentionMax := flag.Int("retention-max", 0, "keep at most this many terminal jobs (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "cap on each job's run time (0 = unlimited)")
	maxBody := flag.Int64("max-body", 1<<20, "max POST /v1/jobs body bytes (larger gets 413)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout (streaming routes are exempt; see -stream-write-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 30*time.Second, "rolling per-write deadline on NDJSON/SSE streams (0 = none)")
	spansOn := flag.Bool("spans", true, "record per-job request spans (traceparent adoption, /v1/traces, /v1/jobs/{id}/spans)")
	spanCap := flag.Int("span-cap", span.DefaultCapacity, "span ring capacity (rounded up to a power of two)")
	sloConfig := flag.String("slo-config", "", "JSON file of per-class SLO objectives (empty = built-in defaults)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfd: %v\n", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	pool := sched.New(sched.Options{Workers: *workers, QueueCap: *queue, Metrics: reg})
	opts := []server.Option{
		server.WithMetrics(reg),
		server.WithLogger(logger),
		server.WithRetention(*retention, *retentionMax),
		server.WithJobDeadline(*deadline),
		server.WithMaxBodyBytes(*maxBody),
		server.WithStreamWriteTimeout(*streamWriteTimeout),
	}
	if *cacheMax >= 0 {
		// The content-addressed result cache: duplicate submissions replay
		// the original run's stream byte-identically in microseconds, and
		// concurrent identical submissions collapse onto one simulation.
		opts = append(opts, server.WithResultCache(*cacheMax))
	}
	objs, err := loadObjectives(*sloConfig)
	if err != nil {
		logger.Error("load SLO objectives", "file", *sloConfig, "error", err)
		os.Exit(1)
	}
	opts = append(opts, server.WithSLO(span.NewEngine(objs)))
	if *spansOn {
		opts = append(opts, server.WithSpans(span.NewRecorder(*spanCap)))
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{Metrics: reg, CompactBytes: *compactBytes})
		if err != nil {
			logger.Error("open job store", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		opts = append(opts, server.WithStore(st))
	}
	srv := server.New(pool, opts...)
	if st != nil {
		resumed, err := srv.Recover()
		if err != nil {
			logger.Error("recover jobs", "error", err)
			os.Exit(1)
		}
		logger.Info("job store open", "dir", *dataDir, "wal_bytes", st.WALBytes(), "resumed", resumed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// The absolute WriteTimeout would kill long-lived NDJSON/SSE streams
	// mid-job; those handlers exempt themselves per response via
	// http.ResponseController and roll their own per-write deadline
	// (-stream-write-timeout), so a dead client is still shed.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue,
		"durable", st != nil, "pprof", *pprofOn)

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drain)

	// From here on a canceled job is a checkpoint, not a client verdict:
	// it persists as "interrupted" and the next boot resumes it.
	srv.BeginDrain()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first; in-flight streams follow the
	// jobs they watch.
	go httpSrv.Shutdown(drainCtx)
	// If the deadline passes, cancel every remaining job so the pool's
	// workers can come home.
	go func() {
		<-drainCtx.Done()
		srv.CancelAll()
	}()
	if err := pool.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("pool shutdown failed", "error", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain deadline hit; canceled remaining jobs")
	}
	httpSrv.Close()
	srv.Close()
	if st != nil {
		// The watcher goroutines append each job's terminal frame right
		// after its task goes terminal; give the stragglers a beat before
		// sealing the WAL. A frame that misses the window is harmless —
		// the job stays "running" in the log, which also resumes.
		time.Sleep(200 * time.Millisecond)
		if err := st.Close(); err != nil {
			logger.Error("close job store", "error", err)
		}
	}
	logger.Info("bye")
}
