// Command avfreport regenerates the paper's tables and figures: the
// processor configuration (Table 1), the sample-size analysis (Figure 1),
// error-propagation-latency CDFs (Figure 2), per-application estimation
// error aggregates for the online and utilization methods (Figure 3),
// detailed AVF time series for mesa and ammp (Figure 4), and last-value
// prediction errors (Figure 5).
//
// Usage:
//
//	avfreport [-scale quick|standard|paper] [-seed N] [-parallel N] [-only table1|fig1|...|fig5]
//
// At -scale paper the run matches the paper's M = N = 1000 over 100–200
// one-million-cycle intervals per benchmark and takes hours; -scale
// standard (default) finishes in a few minutes with the same qualitative
// results. Benchmark-grid artifacts (fig3, fig4, fig5) fan their
// independent simulations out over -parallel workers (default: all
// cores); output is byte-identical to -parallel 1 at the same seed.
//
// With -flight <path> the command instead runs one flight-recorded
// estimation of -flight-benchmark at the chosen scale and dumps the
// reconstructed error-propagation traces as NDJSON — the offline
// counterpart of avfd's GET /v1/jobs/{id}/flight.
//
// With -coverage <path> it runs one estimation of -coverage-benchmark
// with the microarchitectural telemetry collector attached and dumps
// the occupancy residency / injection coverage / confidence surface as
// NDJSON — the offline counterpart of GET /v1/jobs/{id}/coverage.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"avfsim/internal/experiment"
	"avfsim/internal/flight"
	"avfsim/internal/microtel"
	"avfsim/internal/sched"
)

func main() {
	scale := flag.String("scale", "standard", "experiment scale: quick, standard, or paper")
	seed := flag.Uint64("seed", 1, "workload seed")
	only := flag.String("only", "", "render a single artifact: table1, fig1, fig2, fig3, fig4, fig5, ablate, baselines")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "workers for benchmark-grid simulations (1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (source for make pgo)")
	flightOut := flag.String("flight", "", "dump flight-recorder propagation traces (NDJSON) to this file and exit")
	flightBench := flag.String("flight-benchmark", "mesa", "benchmark for the -flight dump")
	coverageOut := flag.String("coverage", "", "dump microarchitectural telemetry (occupancy/coverage/confidence NDJSON) to this file and exit")
	coverageBench := flag.String("coverage-benchmark", "mesa", "benchmark for the -coverage dump")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var spec experiment.ScaleSpec
	switch *scale {
	case "quick":
		spec = experiment.Quick
	case "standard":
		spec = experiment.Standard
	case "paper":
		spec = experiment.Paper
	default:
		fmt.Fprintf(os.Stderr, "avfreport: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *flightOut != "" {
		if err := flightDump(spec, *flightBench, *seed, *flightOut); err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *coverageOut != "" {
		if err := coverageDump(spec, *coverageBench, *seed, *coverageOut); err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	suite := experiment.NewSuite(spec, *seed)
	if *workers > 1 {
		pool := sched.New(sched.Options{Workers: *workers, QueueCap: 64})
		defer pool.Shutdown(context.Background())
		suite.SetPool(pool)
	}
	start := time.Now()
	fmt.Printf("avfreport: scale=%s (phase scale %.2f, M=%d, N=%d, %d intervals, %d workers)\n\n",
		spec.Name, spec.Scale, spec.M, spec.N, spec.Intervals, *workers)

	var err error
	switch *only {
	case "":
		err = suite.All(os.Stdout)
	case "table1":
		err = suite.Table1(os.Stdout)
	case "fig1":
		err = suite.Figure1(os.Stdout)
	case "fig2":
		err = suite.Figure2(os.Stdout)
	case "fig3":
		err = suite.Figure3(os.Stdout)
	case "fig4":
		err = suite.Figure4(os.Stdout)
	case "fig5":
		err = suite.Figure5(os.Stdout)
	case "ablate":
		err = suite.Ablations(os.Stdout)
	case "baselines":
		err = suite.Baselines(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "avfreport: unknown artifact %q\n", *only)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "avfreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\navfreport: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// flightDump runs one flight-recorded estimation and writes the
// reconstructed propagation traces as NDJSON.
func flightDump(spec experiment.ScaleSpec, benchmark string, seed uint64, path string) error {
	rec := flight.New(1 << 20)
	start := time.Now()
	res, err := experiment.Run(experiment.RunConfig{
		Benchmark: benchmark,
		Scale:     spec.Scale,
		Seed:      seed,
		M:         spec.M, N: spec.N, Intervals: spec.Intervals,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	traces := rec.Traces()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traces.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	out := traces.Outcomes()
	fmt.Printf("avfreport: %s @ %s: %d traces (%d failure, %d masked, %d pending, %d open) -> %s\n",
		benchmark, spec.Name, len(traces.Traces),
		out[flight.OutcomeFailure], out[flight.OutcomeMasked], out[flight.OutcomePending], out[flight.OutcomeOpen],
		path)
	if traces.Dropped > 0 || traces.Orphans > 0 {
		fmt.Printf("avfreport: ring dropped %d events (%d orphaned); raise the cap for lossless traces\n",
			traces.Dropped, traces.Orphans)
	}
	fmt.Printf("avfreport: %d retired in %v\n", res.Stats.Retired, time.Since(start).Round(time.Millisecond))
	return nil
}

// coverageDump runs one estimation with the microarchitectural
// telemetry collector attached and writes the occupancy / coverage /
// confidence surface as NDJSON.
func coverageDump(spec experiment.ScaleSpec, benchmark string, seed uint64, path string) error {
	mt := microtel.New(microtel.Config{})
	start := time.Now()
	res, err := experiment.Run(experiment.RunConfig{
		Benchmark: benchmark,
		Scale:     spec.Scale,
		Seed:      seed,
		M:         spec.M, N: spec.N, Intervals: spec.Intervals,
		Microtel: mt,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mt.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	snap := mt.Snapshot()
	fmt.Printf("avfreport: %s @ %s: %d concluded (%d failure, %d masked, %d pending), %d occupancy samples -> %s\n",
		benchmark, spec.Name, snap.Concluded,
		snap.Totals.Failures, snap.Totals.Masked, snap.Totals.Pending, snap.Samples, path)
	for _, ss := range snap.Structures {
		ci := ""
		if ss.Confidence != nil {
			ci = fmt.Sprintf("  avf=%.4f ci=[%.4f, %.4f]", ss.AVF, ss.Confidence.Lo, ss.Confidence.Hi)
		}
		fmt.Printf("avfreport: %-6s coverage %3d/%3d (%.0f%%)  mean occupancy %.2f/%d%s\n",
			ss.Structure, ss.Covered, ss.Entries, ss.CoverageRatio*100,
			ss.OccupancyMean, ss.Entries, ci)
	}
	fmt.Printf("avfreport: %d retired in %v\n", res.Stats.Retired, time.Since(start).Round(time.Millisecond))
	return nil
}
