// Command avftrace generates, inspects, and converts synthetic workload
// traces (the repository's stand-in for the paper's SPEC CPU2000 Aria/MET
// traces).
//
// Usage:
//
//	avftrace gen -bench bzip2 -n 1000000 -o bzip2.avft [-seed 1] [-scale 1]
//	avftrace stat -i bzip2.avft
//	avftrace dump -i bzip2.avft [-n 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"avfsim/internal/config"
	"avfsim/internal/isa"
	"avfsim/internal/pipeline"
	"avfsim/internal/trace"
	"avfsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "profiles":
		err = cmdProfiles()
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "avftrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: avftrace gen|stat|dump|profiles|characterize [flags]")
	os.Exit(2)
}

// cmdCharacterize runs each benchmark briefly on the Table 1 processor and
// prints its microarchitectural character: IPC, queue occupancy, cache and
// branch behaviour — the knobs that drive AVF.
func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark to characterize (default: all)")
	cycles := fs.Int64("cycles", 500_000, "cycles to simulate per benchmark")
	scale := fs.Float64("scale", 0.05, "phase-length scale")
	seed := fs.Uint64("seed", 1, "workload seed")
	fs.Parse(args)

	names := workload.Names()
	if *bench != "" {
		names = []string{*bench}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tipc\tiq occ\tint busy\tfp busy\tl1d miss\tl2 miss\tbr mispred\t\n")
	for _, name := range names {
		prof, err := workload.ByName(name)
		if err != nil {
			return err
		}
		if *scale != 1 {
			prof = workload.Scale(prof, *scale)
		}
		src, err := prof.Source(*seed)
		if err != nil {
			return err
		}
		cfg := config.Default()
		p, err := pipeline.New(&cfg, src)
		if err != nil {
			return err
		}
		p.Run(*cycles)
		st := p.Snapshot()
		h := p.Hierarchy()
		entries := float64(p.StructureEntries(pipeline.StructIQ))
		busy := func(k pipeline.FUKind, units int) float64 {
			return float64(p.BusyUnitCycles(k)) / (float64(st.Cycles) * float64(units))
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t\n",
			name, st.IPC,
			100*st.MeanIQOccupancy/entries,
			100*busy(pipeline.FUInt, cfg.NumIntUnits),
			100*busy(pipeline.FUFP, cfg.NumFPUnits),
			100*h.L1D.MissRate(),
			100*h.L2.MissRate(),
			100*p.Predictor().MispredictRate())
	}
	return tw.Flush()
}

func cmdProfiles() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tphase\tinsts\tworking set\tdep dist\tdead\tseq\tbiased br\t\n")
	for _, name := range workload.Names() {
		prof, err := workload.ByName(name)
		if err != nil {
			return err
		}
		for _, ph := range prof.Phases {
			p := ph.Params
			fmt.Fprintf(tw, "%s\t%s\t%dM\t%s\t%.1f\t%.0f%%\t%.0f%%\t%.0f%%\t\n",
				prof.Name, ph.Name, ph.Insts>>20, fmtBytes(p.WorkingSet),
				p.DepDistMean, 100*p.DeadFrac, 100*p.SeqFrac, 100*p.BiasedFrac)
		}
	}
	return tw.Flush()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "mesa", "benchmark profile ("+strings.Join(workload.Names(), ", ")+")")
	n := fs.Int64("n", 1_000_000, "instructions to generate")
	out := fs.String("o", "", "output file (required)")
	seed := fs.Uint64("seed", 1, "workload seed")
	scale := fs.Float64("scale", 1, "phase-length scale")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	if *scale != 1 {
		prof = workload.Scale(prof, *scale)
	}
	src, err := prof.Source(*seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := trace.WriteAll(f, src, *n)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions (%d bytes, %.2f B/inst) to %s\n",
		written, info.Size(), float64(info.Size())/float64(written), *out)
	return f.Close()
}

func openTrace(path string) (*os.File, *trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, trace.NewReader(f), nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("stat: -i is required")
	}
	f, r, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var total, taken, branches int64
	counts := map[isa.Class]int64{}
	pcs := map[uint64]struct{}{}
	for {
		inst, ok := r.Next()
		if !ok {
			break
		}
		total++
		counts[inst.Class]++
		pcs[inst.PC] = struct{}{}
		if inst.Class == isa.ClassBranch {
			branches++
			if inst.Taken {
				taken++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d static PCs\n", *in, total, len(pcs))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\t\n", c, counts[c], 100*float64(counts[c])/float64(total))
	}
	tw.Flush()
	if branches > 0 {
		fmt.Printf("  taken branch fraction: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	n := fs.Int("n", 20, "instructions to print")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("dump: -i is required")
	}
	f, r, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < *n; i++ {
		inst, ok := r.Next()
		if !ok {
			break
		}
		fmt.Printf("%6d  %s\n", i, inst.String())
	}
	return r.Err()
}
