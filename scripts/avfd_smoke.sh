#!/usr/bin/env bash
# End-to-end smoke test for the avfd daemon: build it, boot it, run a
# flight-recorded estimation job, and assert the observability surface
# works — /metrics families, /v1/drift streams, the /debug/avf
# dashboard, and the flight export, whose propagation traces must
# reconcile with the estimator's own per-interval counters.
#
# Tooling is deliberately minimal (curl + grep + awk) so the script runs
# on a bare CI image. Exits nonzero on the first failed assertion.
set -euo pipefail

ADDR="${AVFD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="${TMPDIR:-/tmp}/avfd-smoke-$$"
JOB_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":3,"m":400,"n":50,"intervals":3,"flight":true}'

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# json_str KEY — first string value for "KEY" in stdin.
json_str() {
    awk -F'"' -v key="$1" '{for (i = 1; i < NF; i++) if ($i == key) {print $(i + 2); exit}}'
}

# json_int_sum KEY — sum of every integer value for "KEY" in stdin
# (tolerates pretty-printed JSON with space after the colon).
json_int_sum() {
    grep -o "\"$1\": *[0-9]*" | awk -F': *' '{s += $2} END {print s + 0}'
}

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/avfd
"$BIN" -addr "$ADDR" -workers 2 -log-level warn &
AVFD_PID=$!
trap 'kill "$AVFD_PID" 2>/dev/null || true; wait "$AVFD_PID" 2>/dev/null || true; rm -f "$BIN"' EXIT

for i in $(seq 1 50); do
    curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
    [ "$i" -eq 50 ] && fail "daemon never became healthy on $ADDR"
    sleep 0.2
done
echo "ok: daemon healthy"

SUBMIT=$(curl -fsS "$BASE/v1/jobs" -d "$JOB_SPEC")
JOB=$(printf '%s' "$SUBMIT" | json_str id)
[ -n "$JOB" ] || fail "submit returned no job id: $SUBMIT"
echo "ok: submitted $JOB"

STATE=""
for i in $(seq 1 300); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB")
    STATE=$(printf '%s' "$STATUS" | json_str state)
    case "$STATE" in
    done) break ;;
    failed | canceled) fail "job ended $STATE: $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || fail "job still '$STATE' after timeout"
echo "ok: job done"

# Prometheus exposition carries the estimator and drift families.
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^avfd_injections_total{' ||
    fail "/metrics missing avfd_injections_total"
printf '%s\n' "$METRICS" | grep -q '^avfd_drift_last{' ||
    fail "/metrics missing avfd_drift_last"
echo "ok: /metrics exposes estimator and drift families"

# The drift monitor tracked one AVF stream per structure of this
# benchmark, one observation per interval.
DRIFT=$(curl -fsS "$BASE/v1/drift")
printf '%s' "$DRIFT" | grep -q '"avf/bzip2/iq"' || fail "/v1/drift missing avf/bzip2/iq stream"
printf '%s' "$DRIFT" | grep -q '"divergence/bzip2/iq"' || fail "/v1/drift missing divergence stream"
echo "ok: /v1/drift tracks AVF and divergence streams"

curl -fsS "$BASE/debug/avf" | grep -qi '<html' || fail "/debug/avf did not serve the dashboard"
echo "ok: /debug/avf dashboard serves"

# Reconcile the flight export against the job's interval counters: every
# estimator-concluded injection is a closed trace, every counted failure
# a failure-outcome trace.
FLIGHT=$(curl -fsS "$BASE/v1/jobs/$JOB/flight")
WANT_FAIL=$(printf '%s' "$STATUS" | json_int_sum failures)
WANT_CLOSED=$(printf '%s' "$STATUS" | json_int_sum injections)
GOT_FAIL=$(printf '%s\n' "$FLIGHT" | grep -c '"outcome":"failure"' || true)
GOT_CLOSED=$(printf '%s\n' "$FLIGHT" | grep -cE '"outcome":"(failure|masked|pending)"' || true)
[ "$GOT_FAIL" -eq "$WANT_FAIL" ] ||
    fail "flight failure traces ($GOT_FAIL) != estimator failures ($WANT_FAIL)"
[ "$GOT_CLOSED" -eq "$WANT_CLOSED" ] ||
    fail "flight closed traces ($GOT_CLOSED) != estimator injections ($WANT_CLOSED)"
echo "ok: flight traces reconcile ($GOT_CLOSED closed, $GOT_FAIL failures)"

echo "PASS: avfd end-to-end smoke"
