#!/usr/bin/env bash
# End-to-end smoke test for the avfd daemon: build it, boot it, run a
# flight-recorded estimation job submitted with an injected W3C
# traceparent, and assert the observability surface works — /metrics
# families, /v1/drift streams, the /debug/avf dashboard, the flight
# export (whose propagation traces must reconcile with the estimator's
# own per-interval counters), the job's span tree (which must carry the
# injected trace ID end to end and reconcile with the job status), and
# /v1/slo. The span NDJSON is left at $SPAN_OUT (default
# avfd-spans.ndjson) for the CI workflow to archive.
#
# The multi-lane leg runs with microarchitectural telemetry on: its
# coverage export must reconcile exactly with the job status (concluded
# injections, failures, per-lane utilization) and is left at
# $COVERAGE_OUT (default avfd-coverage.ndjson) for CI to archive.
#
# A result-cache leg asserts the content-addressed cache end to end:
# duplicates of a completed run come back already terminal with
# byte-identical streams, and the hit/miss/follower counters reconcile
# exactly with the cache-eligible submissions made.
#
# A second leg exercises crash recovery: a durable daemon (-data-dir,
# with an aggressive -compact-bytes so the kill lands past a snapshot
# compaction) is SIGKILLed mid-job, restarted on the same directory,
# and the resumed job's NDJSON estimate stream must be byte-identical
# to an uninterrupted reference run of the same spec — after which a
# duplicate submission must be served from the rebuilt cache.
#
# Tooling is deliberately minimal (curl + grep + awk) so the script runs
# on a bare CI image. Exits nonzero on the first failed assertion.
set -euo pipefail

ADDR="${AVFD_ADDR:-127.0.0.1:18080}"
ADDR_REF="${AVFD_ADDR_REF:-127.0.0.1:18081}"
ADDR_CRASH="${AVFD_ADDR_CRASH:-127.0.0.1:18082}"
BASE="http://$ADDR"
BASE_REF="http://$ADDR_REF"
BASE_CRASH="http://$ADDR_CRASH"
BIN="${TMPDIR:-/tmp}/avfd-smoke-$$"
DATA_DIR=""
CLEANUP_PIDS=""
JOB_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":3,"m":400,"n":50,"intervals":3,"flight":true}'
# Injected W3C trace context: the daemon must adopt this trace ID and
# chain the job's root span under the caller span.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
PARENT_SPAN="00f067aa0ba902b7"
TRACEPARENT="00-$TRACE_ID-$PARENT_SPAN-01"
SPAN_OUT="${SPAN_OUT:-avfd-spans.ndjson}"
COVERAGE_OUT="${COVERAGE_OUT:-avfd-coverage.ndjson}"
# Long enough (40 intervals x 100k cycles) that the SIGKILL below lands
# mid-run with checkpoints already durable and plenty still to go.
RECOVERY_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":7,"m":2000,"n":50,"intervals":40}'

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

cleanup() {
    for p in $CLEANUP_PIDS; do
        kill -9 "$p" 2>/dev/null || true
        wait "$p" 2>/dev/null || true
    done
    rm -f "$BIN"
    [ -n "$DATA_DIR" ] && rm -rf "$DATA_DIR"
}

# wait_healthy BASE — poll /v1/healthz until the daemon answers.
wait_healthy() {
    for i in $(seq 1 50); do
        curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    return 1
}

# wait_done BASE JOB — poll until the job is done (fail on any other
# terminal state). Responses are buffered before json_str because its
# awk exits at the first match, which would SIGPIPE a direct curl pipe.
wait_done() {
    local body st=""
    for i in $(seq 1 600); do
        body=$(curl -fsS "$1/v1/jobs/$2") || fail "status fetch for $2 failed"
        st=$(printf '%s' "$body" | json_str state)
        case "$st" in
        done) return 0 ;;
        failed | canceled) fail "job $2 ended $st" ;;
        esac
        sleep 0.1
    done
    fail "job $2 still '$st' after timeout"
}

# interval_stream BASE JOB — the job's NDJSON estimate lines (the
# replayed per-interval series, without the terminal event).
interval_stream() {
    curl -fsS "$1/v1/jobs/$2/stream" | grep '"type":"interval"'
}

# json_str KEY — first string value for "KEY" in stdin.
json_str() {
    awk -F'"' -v key="$1" '{for (i = 1; i < NF; i++) if ($i == key) {print $(i + 2); exit}}'
}

# json_int_sum KEY — sum of every integer value for "KEY" in stdin
# (tolerates pretty-printed JSON with space after the colon).
json_int_sum() {
    grep -o "\"$1\": *[0-9]*" | awk -F': *' '{s += $2} END {print s + 0}'
}

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/avfd
trap cleanup EXIT
"$BIN" -addr "$ADDR" -workers 2 -log-level warn &
AVFD_PID=$!
CLEANUP_PIDS="$AVFD_PID"

wait_healthy "$BASE" || fail "daemon never became healthy on $ADDR"
echo "ok: daemon healthy"

SUBMIT=$(curl -fsS "$BASE/v1/jobs" -H "traceparent: $TRACEPARENT" -d "$JOB_SPEC")
JOB=$(printf '%s' "$SUBMIT" | json_str id)
[ -n "$JOB" ] || fail "submit returned no job id: $SUBMIT"
[ "$(printf '%s' "$SUBMIT" | json_str trace_id)" = "$TRACE_ID" ] ||
    fail "submit response did not adopt injected trace id: $SUBMIT"
echo "ok: submitted $JOB (trace $TRACE_ID adopted)"

STATE=""
for i in $(seq 1 300); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB")
    STATE=$(printf '%s' "$STATUS" | json_str state)
    case "$STATE" in
    done) break ;;
    failed | canceled) fail "job ended $STATE: $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || fail "job still '$STATE' after timeout"
echo "ok: job done"

# Prometheus exposition carries the estimator and drift families.
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^avfd_injections_total{' ||
    fail "/metrics missing avfd_injections_total"
printf '%s\n' "$METRICS" | grep -q '^avfd_drift_last{' ||
    fail "/metrics missing avfd_drift_last"
echo "ok: /metrics exposes estimator and drift families"

# The drift monitor tracked one AVF stream per structure of this
# benchmark, one observation per interval.
DRIFT=$(curl -fsS "$BASE/v1/drift")
printf '%s' "$DRIFT" | grep -q '"avf/bzip2/iq"' || fail "/v1/drift missing avf/bzip2/iq stream"
printf '%s' "$DRIFT" | grep -q '"divergence/bzip2/iq"' || fail "/v1/drift missing divergence stream"
echo "ok: /v1/drift tracks AVF and divergence streams"

DASH=$(curl -fsS "$BASE/debug/avf")
printf '%s' "$DASH" | grep -qi '<html' || fail "/debug/avf did not serve the dashboard"
echo "ok: /debug/avf dashboard serves"

# Reconcile the flight export against the job's interval counters: every
# estimator-concluded injection is a closed trace, every counted failure
# a failure-outcome trace.
FLIGHT=$(curl -fsS "$BASE/v1/jobs/$JOB/flight")
WANT_FAIL=$(printf '%s' "$STATUS" | json_int_sum failures)
WANT_CLOSED=$(printf '%s' "$STATUS" | json_int_sum injections)
GOT_FAIL=$(printf '%s\n' "$FLIGHT" | grep -c '"outcome":"failure"' || true)
GOT_CLOSED=$(printf '%s\n' "$FLIGHT" | grep -cE '"outcome":"(failure|masked|pending)"' || true)
[ "$GOT_FAIL" -eq "$WANT_FAIL" ] ||
    fail "flight failure traces ($GOT_FAIL) != estimator failures ($WANT_FAIL)"
[ "$GOT_CLOSED" -eq "$WANT_CLOSED" ] ||
    fail "flight closed traces ($GOT_CLOSED) != estimator injections ($WANT_CLOSED)"
echo "ok: flight traces reconcile ($GOT_CLOSED closed, $GOT_FAIL failures)"

# ---------------------------------------------------------------------
# Span leg: the injected traceparent must round-trip through the job
# status and every recorded span, and the span tree must reconcile
# with the job status — one admission/queue/dispatch/run span, one
# interval span per estimate, root chained under the caller's span and
# ending with the job's terminal state.
# ---------------------------------------------------------------------

[ "$(printf '%s' "$STATUS" | json_str trace_id)" = "$TRACE_ID" ] ||
    fail "job status trace_id is not the injected trace"

# The watcher goroutine records the root span just after the status
# flips terminal; poll briefly for it.
for i in $(seq 1 50); do
    curl -fsS "$BASE/v1/jobs/$JOB/spans" >"$SPAN_OUT"
    grep -q '"name":"job"' "$SPAN_OUT" && break
    sleep 0.1
done
grep -q '"name":"job"' "$SPAN_OUT" || fail "root job span never appeared in the export"
SPAN_LINES=$(wc -l <"$SPAN_OUT")
OFF_TRACE=$(grep -cv "\"trace_id\":\"$TRACE_ID\"" "$SPAN_OUT" || true)
[ "$OFF_TRACE" -eq 0 ] || fail "$OFF_TRACE of $SPAN_LINES spans carry a foreign trace id"
for name in admission queue dispatch run; do
    n=$(grep -c "\"name\":\"$name\"" "$SPAN_OUT" || true)
    [ "$n" -eq 1 ] || fail "expected exactly one '$name' span, got $n"
done
ROOT=$(grep '"name":"job"' "$SPAN_OUT")
[ "$(printf '%s' "$ROOT" | json_str parent_id)" = "$PARENT_SPAN" ] ||
    fail "root span not chained under the caller span: $ROOT"
[ "$(printf '%s' "$ROOT" | json_str status)" = "$STATE" ] ||
    fail "root span status does not match job state '$STATE': $ROOT"
# One interval span per checkpointed estimate: intervals x 4
# structures ("start_cycle" appears only in interval points, not in
# the final series blocks).
WANT_IV=$(printf '%s' "$STATUS" | grep -c '"start_cycle"' || true)
GOT_IV=$(grep -c '"name":"interval"' "$SPAN_OUT" || true)
[ "$GOT_IV" -eq "$WANT_IV" ] ||
    fail "interval spans ($GOT_IV) != status estimates ($WANT_IV)"
echo "ok: span tree reconciles ($SPAN_LINES spans, $GOT_IV intervals) -> $SPAN_OUT"

curl -fsS "$BASE/v1/traces" | grep -q "$TRACE_ID" ||
    fail "/v1/traces does not list the injected trace"
echo "ok: /v1/traces lists the trace"

SLO=$(curl -fsS "$BASE/v1/slo")
printf '%s' "$SLO" | grep -q '"class": *"standard"' || fail "/v1/slo missing standard class"
GOOD=$(printf '%s' "$SLO" | json_int_sum good_total)
[ "$GOOD" -ge 1 ] || fail "/v1/slo recorded no good completions: $SLO"
printf '%s\n' "$METRICS" | grep -q '^avfd_slo_budget_remaining{' ||
    fail "/metrics missing avfd_slo_budget_remaining"
echo "ok: /v1/slo charged the completed job ($GOOD good)"

# ---------------------------------------------------------------------
# Multi-lane leg: a 16-lane flight-recorded job on the same daemon. The
# lane engine runs 16 concurrent injection experiments through one
# pipeline, so its flight export and span tree must reconcile with the
# job status exactly as the single-lane job's did — every closed trace
# one concluded injection, every failure trace one counted failure —
# with each trace tagged by its lane and all 16 lanes still live (open
# windows) when the job stops.
# ---------------------------------------------------------------------

# n is divisible by the per-structure pool size (lanes/4 structures = 4)
# so every estimate completes exactly at a conclusion boundary and no
# concluded injection spills into an uncounted fourth interval — the
# closed-trace count then equals the status injection sum exactly.
LANES=16
LANE_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":3,"m":400,"n":48,"intervals":3,"lanes":'$LANES',"flight":true,"microtel":true}'
LANE_SUBMIT=$(curl -fsS "$BASE/v1/jobs" -d "$LANE_SPEC")
LANE_JOB=$(printf '%s' "$LANE_SUBMIT" | json_str id)
[ -n "$LANE_JOB" ] || fail "multi-lane submit returned no job id: $LANE_SUBMIT"
wait_done "$BASE" "$LANE_JOB"
LANE_STATUS=$(curl -fsS "$BASE/v1/jobs/$LANE_JOB")
LANE_FLIGHT=$(curl -fsS "$BASE/v1/jobs/$LANE_JOB/flight")
WANT_FAIL=$(printf '%s' "$LANE_STATUS" | json_int_sum failures)
WANT_CLOSED=$(printf '%s' "$LANE_STATUS" | json_int_sum injections)
GOT_FAIL=$(printf '%s\n' "$LANE_FLIGHT" | grep -c '"outcome":"failure"' || true)
GOT_CLOSED=$(printf '%s\n' "$LANE_FLIGHT" | grep -cE '"outcome":"(failure|masked|pending)"' || true)
GOT_OPEN=$(printf '%s\n' "$LANE_FLIGHT" | grep -c '"outcome":"open"' || true)
TOTAL=$(printf '%s\n' "$LANE_FLIGHT" | grep -c '"outcome":' || true)
TAGGED=$(printf '%s\n' "$LANE_FLIGHT" | grep -c '"lane":' || true)
[ "$GOT_FAIL" -eq "$WANT_FAIL" ] ||
    fail "lane flight failure traces ($GOT_FAIL) != estimator failures ($WANT_FAIL)"
[ "$GOT_CLOSED" -eq "$WANT_CLOSED" ] ||
    fail "lane flight closed traces ($GOT_CLOSED) != estimator injections ($WANT_CLOSED)"
[ "$GOT_OPEN" -eq "$LANES" ] ||
    fail "open windows ($GOT_OPEN) != $LANES lanes — occupancy drained or leaked"
[ "$TAGGED" -eq "$TOTAL" ] ||
    fail "only $TAGGED of $TOTAL lane traces carry a lane tag"
WANT_IV=$(printf '%s' "$LANE_STATUS" | grep -c '"start_cycle"' || true)
GOT_IV=$(curl -fsS "$BASE/v1/jobs/$LANE_JOB/spans" | grep -c '"name":"interval"' || true)
[ "$GOT_IV" -eq "$WANT_IV" ] ||
    fail "lane interval spans ($GOT_IV) != status estimates ($WANT_IV)"
echo "ok: multi-lane job reconciles ($GOT_CLOSED closed, $GOT_FAIL failures, $GOT_OPEN live lanes, $GOT_IV interval spans)"

# ---------------------------------------------------------------------
# Microtel leg: the multi-lane job ran with "microtel": true, so its
# coverage export must reconcile exactly with the same job status the
# flight export just did — summary concluded == status injections,
# summary failures == status failures, structure lines == summary,
# entry lines == structure lines, 16 lane lines partitioning the total
# — and every streamed estimate must carry a Wilson confidence interval.
# ---------------------------------------------------------------------

curl -fsS "$BASE/v1/jobs/$LANE_JOB/coverage" >"$COVERAGE_OUT"
SUMMARY=$(head -1 "$COVERAGE_OUT")
printf '%s' "$SUMMARY" | grep -q '"type":"summary"' ||
    fail "coverage export does not lead with a summary line: $SUMMARY"
COV_CONCLUDED=$(printf '%s' "$SUMMARY" | json_int_sum concluded)
COV_FAIL=$(printf '%s' "$SUMMARY" | json_int_sum failures)
[ "$COV_CONCLUDED" -eq "$WANT_CLOSED" ] ||
    fail "coverage concluded ($COV_CONCLUDED) != estimator injections ($WANT_CLOSED)"
[ "$COV_FAIL" -eq "$WANT_FAIL" ] ||
    fail "coverage failures ($COV_FAIL) != estimator failures ($WANT_FAIL)"
STRUCT_LINES=$(grep '"type":"structure"' "$COVERAGE_OUT")
STRUCT_TOTAL=$(($(printf '%s\n' "$STRUCT_LINES" | json_int_sum failures) +
    $(printf '%s\n' "$STRUCT_LINES" | json_int_sum masked) +
    $(printf '%s\n' "$STRUCT_LINES" | json_int_sum pending)))
[ "$STRUCT_TOTAL" -eq "$COV_CONCLUDED" ] ||
    fail "structure lines sum to $STRUCT_TOTAL, summary concluded $COV_CONCLUDED"
ENTRY_LINES=$(grep '"type":"entry"' "$COVERAGE_OUT")
ENTRY_TOTAL=$(($(printf '%s\n' "$ENTRY_LINES" | json_int_sum failures) +
    $(printf '%s\n' "$ENTRY_LINES" | json_int_sum masked) +
    $(printf '%s\n' "$ENTRY_LINES" | json_int_sum pending)))
[ "$ENTRY_TOTAL" -eq "$COV_CONCLUDED" ] ||
    fail "entry lines sum to $ENTRY_TOTAL, summary concluded $COV_CONCLUDED"
LANE_LINES=$(grep -c '"type":"lane"' "$COVERAGE_OUT" || true)
[ "$LANE_LINES" -eq "$LANES" ] || fail "coverage has $LANE_LINES lane lines, want $LANES"
LANE_INJ=$(grep '"type":"lane"' "$COVERAGE_OUT" | json_int_sum injections)
[ "$LANE_INJ" -eq "$COV_CONCLUDED" ] ||
    fail "lane injections ($LANE_INJ) != concluded ($COV_CONCLUDED)"
SAMPLES=$(printf '%s' "$SUMMARY" | json_int_sum samples)
[ "$SAMPLES" -ge 1 ] || fail "coverage recorded no occupancy samples"
printf '%s' "$LANE_STATUS" | grep -q '"confidence"' ||
    fail "microtel job status estimates carry no confidence intervals"
curl -fsS "$BASE/v1/occupancy" | grep -q '"structure": *"iq"' ||
    fail "/v1/occupancy missing the iq structure"
STATS=$(curl -fsS "$BASE/v1/stats")
printf '%s' "$STATS" | grep -q '"drops"' || fail "/v1/stats missing drops block"
printf '%s' "$STATS" | grep -q '"flight_events"' || fail "drops block missing flight_events"
printf '%s' "$STATS" | grep -q '"microtel"' || fail "/v1/stats missing microtel block"
MT_METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$MT_METRICS" | grep -q '^avfd_microtel_occupancy_mean{' ||
    fail "/metrics missing avfd_microtel_occupancy_mean"
printf '%s\n' "$MT_METRICS" | grep -q '^avfd_flight_dropped_total ' ||
    fail "/metrics missing avfd_flight_dropped_total"
echo "ok: microtel coverage reconciles ($COV_CONCLUDED concluded, $SAMPLES samples, $LANE_LINES lanes) -> $COVERAGE_OUT"

# ---------------------------------------------------------------------
# Result-cache leg: the flight job populated the content-addressed
# cache (recording is presentation, excluded from the canonical key),
# so the same simulation parameters without the recorder must come back
# as an already-terminal cache hit with a byte-identical estimate
# stream. A fresh spec then exercises the miss -> complete -> hit
# cycle, and at the end the cache counters must reconcile exactly with
# the cache-eligible submissions this leg made.
# ---------------------------------------------------------------------

# The watcher persists the cache entry just after the job goes
# terminal; wait for the flight job's entry to land. (Responses are
# buffered before grep -q so its early exit cannot SIGPIPE curl.)
CACHE_ENTRIES=""
for i in $(seq 1 50); do
    CACHE_ENTRIES=$(curl -fsS "$BASE/metrics")
    printf '%s\n' "$CACHE_ENTRIES" | grep -q '^avfd_cache_entries [1-9]' && break
    sleep 0.1
done
printf '%s\n' "$CACHE_ENTRIES" | grep -q '^avfd_cache_entries [1-9]' ||
    fail "flight job never populated the result cache"

ELIGIBLE=0
CACHE_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":3,"m":400,"n":50,"intervals":3}'
HIT_SUBMIT=$(curl -fsS "$BASE/v1/jobs" -d "$CACHE_SPEC")
ELIGIBLE=$((ELIGIBLE + 1))
printf '%s' "$HIT_SUBMIT" | grep -q '"cached": *true' ||
    fail "duplicate of the flight job's parameters was not served from cache: $HIT_SUBMIT"
[ "$(printf '%s' "$HIT_SUBMIT" | json_str state)" = done ] ||
    fail "cache hit did not come back terminal: $HIT_SUBMIT"
HIT_JOB=$(printf '%s' "$HIT_SUBMIT" | json_str id)
HIT_STREAM=$(interval_stream "$BASE" "$HIT_JOB")
ORIG_STREAM=$(interval_stream "$BASE" "$JOB")
if [ "$HIT_STREAM" != "$ORIG_STREAM" ]; then
    diff <(printf '%s\n' "$ORIG_STREAM") <(printf '%s\n' "$HIT_STREAM") >&2 || true
    fail "cache-hit estimate stream differs from the original run"
fi
echo "ok: cache hit replays the flight job byte-identically ($HIT_JOB)"

# Fresh spec: first submission is the single-flight leader (a miss),
# the duplicate after completion a hit. The duplicate poll tolerates
# the watcher's persistence window — attempts that land inside it
# resolve as followers of the ended leader, which the reconciliation
# below accounts for.
MISS_SPEC='{"benchmark":"bzip2","scale":0.02,"seed":9,"m":400,"n":50,"intervals":3}'
MISS_SUBMIT=$(curl -fsS "$BASE/v1/jobs" -d "$MISS_SPEC")
ELIGIBLE=$((ELIGIBLE + 1))
printf '%s' "$MISS_SUBMIT" | grep -q '"cached": *true' &&
    fail "first submission of a fresh spec claimed a cache hit: $MISS_SUBMIT"
MISS_JOB=$(printf '%s' "$MISS_SUBMIT" | json_str id)
[ -n "$MISS_JOB" ] || fail "fresh-spec submit returned no job id: $MISS_SUBMIT"
wait_done "$BASE" "$MISS_JOB"
DUP_SUBMIT=""
for i in $(seq 1 50); do
    DUP_SUBMIT=$(curl -fsS "$BASE/v1/jobs" -d "$MISS_SPEC")
    ELIGIBLE=$((ELIGIBLE + 1))
    printf '%s' "$DUP_SUBMIT" | grep -q '"cached": *true' && break
    sleep 0.1
done
printf '%s' "$DUP_SUBMIT" | grep -q '"cached": *true' ||
    fail "duplicate of a completed run never hit the cache: $DUP_SUBMIT"
[ "$(printf '%s' "$DUP_SUBMIT" | json_str cache_leader)" = "$MISS_JOB" ] ||
    fail "cache hit does not name the leader $MISS_JOB: $DUP_SUBMIT"

# Every cache-eligible submission is exactly one of hit, miss, or
# single-flight follower — the three counters must sum to the
# submissions this leg made.
CACHE_METRICS=$(curl -fsS "$BASE/metrics")
HITS=$(printf '%s\n' "$CACHE_METRICS" | awk '/^avfd_cache_hits_total /{print $2}')
MISSES=$(printf '%s\n' "$CACHE_METRICS" | awk '/^avfd_cache_misses_total /{print $2}')
FOLLOWERS=$(printf '%s\n' "$CACHE_METRICS" | awk '/^avfd_cache_singleflight_followers_total /{print $2}')
[ $((HITS + MISSES + FOLLOWERS)) -eq "$ELIGIBLE" ] ||
    fail "cache counters (hits $HITS + misses $MISSES + followers $FOLLOWERS) != $ELIGIBLE eligible submissions"
[ "$HITS" -ge 2 ] || fail "expected at least 2 cache hits, got $HITS"
[ "$MISSES" -eq 1 ] || fail "expected exactly 1 cache miss, got $MISSES"
CACHE_STATS=$(curl -fsS "$BASE/v1/stats")
printf '%s' "$CACHE_STATS" | grep -q '"singleflight_followers"' ||
    fail "/v1/stats missing the cache block"
echo "ok: cache counters reconcile ($HITS hits + $MISSES miss + $FOLLOWERS followers = $ELIGIBLE submissions)"

# ---------------------------------------------------------------------
# Crash-recovery leg: kill -9 a durable daemon mid-job, restart on the
# same -data-dir, and require the resumed job to finish with an
# estimate stream byte-identical to an uninterrupted reference run.
# The daemon runs with an aggressive compaction threshold and the kill
# only lands after at least one snapshot compaction, so the replay
# crosses a snapshot+WAL boundary, not just a plain log.
# ---------------------------------------------------------------------

# Uninterrupted reference: same binary and spec, no durability.
"$BIN" -addr "$ADDR_REF" -workers 2 -log-level warn &
REF_PID=$!
CLEANUP_PIDS="$CLEANUP_PIDS $REF_PID"
wait_healthy "$BASE_REF" || fail "reference daemon never became healthy on $ADDR_REF"
REF_SUBMIT=$(curl -fsS "$BASE_REF/v1/jobs" -d "$RECOVERY_SPEC")
REF_JOB=$(printf '%s' "$REF_SUBMIT" | json_str id)
[ -n "$REF_JOB" ] || fail "reference submit returned no job id: $REF_SUBMIT"
wait_done "$BASE_REF" "$REF_JOB"
REF_STREAM=$(interval_stream "$BASE_REF" "$REF_JOB")
[ -n "$REF_STREAM" ] || fail "reference run produced no estimates"
echo "ok: reference run done ($(printf '%s\n' "$REF_STREAM" | wc -l) estimates)"

# Durable daemon: submit, wait for checkpoints to land, then SIGKILL —
# no drain, no flush; whatever the WAL holds is all that survives.
DATA_DIR=$(mktemp -d "${TMPDIR:-/tmp}/avfd-smoke-wal-$$-XXXXXX")
"$BIN" -addr "$ADDR_CRASH" -data-dir "$DATA_DIR" -compact-bytes 2048 -workers 2 -log-level warn &
CRASH_PID=$!
CLEANUP_PIDS="$CLEANUP_PIDS $CRASH_PID"
wait_healthy "$BASE_CRASH" || fail "durable daemon never became healthy on $ADDR_CRASH"
CRASH_SUBMIT=$(curl -fsS "$BASE_CRASH/v1/jobs" -d "$RECOVERY_SPEC")
CRASH_JOB=$(printf '%s' "$CRASH_SUBMIT" | json_str id)
[ -n "$CRASH_JOB" ] || fail "durable submit returned no job id: $CRASH_SUBMIT"
PTS=0
COMPACTIONS=0
for i in $(seq 1 600); do
    PTS=$(curl -fsS "$BASE_CRASH/v1/jobs/$CRASH_JOB" | grep -c '"structure"' || true)
    COMPACTIONS=$(curl -fsS "$BASE_CRASH/metrics" |
        awk '/^avfd_store_compactions_total /{print $2}')
    [ "$PTS" -ge 8 ] && [ "${COMPACTIONS:-0}" -ge 1 ] && break
    sleep 0.05
done
[ "$PTS" -ge 8 ] || fail "job never reached 8 checkpointed estimates before the crash"
[ "${COMPACTIONS:-0}" -ge 1 ] ||
    fail "no snapshot compaction landed before the crash (avfd_store_compactions_total $COMPACTIONS)"
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
echo "ok: SIGKILLed durable daemon mid-job ($PTS estimates checkpointed, $COMPACTIONS compactions)"

# Restart on the same directory: the snapshot + WAL tail replay, the
# job resumes, and the daemon reports the recovery in its metrics.
"$BIN" -addr "$ADDR_CRASH" -data-dir "$DATA_DIR" -compact-bytes 2048 -workers 2 -log-level warn &
CRASH_PID=$!
CLEANUP_PIDS="$CLEANUP_PIDS $CRASH_PID"
wait_healthy "$BASE_CRASH" || fail "restarted daemon never became healthy on $ADDR_CRASH"
CRASH_METRICS=$(curl -fsS "$BASE_CRASH/metrics")
printf '%s\n' "$CRASH_METRICS" | grep -q '^avfd_recovered_jobs_total 1$' ||
    fail "/metrics missing avfd_recovered_jobs_total 1 after restart"
wait_done "$BASE_CRASH" "$CRASH_JOB"
RES_STREAM=$(interval_stream "$BASE_CRASH" "$CRASH_JOB")
if [ "$REF_STREAM" != "$RES_STREAM" ]; then
    diff <(printf '%s\n' "$REF_STREAM") <(printf '%s\n' "$RES_STREAM") >&2 || true
    fail "resumed estimate stream differs from uninterrupted reference"
fi
echo "ok: resumed job byte-identical to uninterrupted run ($(printf '%s\n' "$RES_STREAM" | wc -l) estimates)"

# The completed resumed run must now serve duplicates from the cache —
# crash, snapshot compaction, and replay in between notwithstanding.
CRASH_DUP=""
for i in $(seq 1 50); do
    CRASH_DUP=$(curl -fsS "$BASE_CRASH/v1/jobs" -d "$RECOVERY_SPEC")
    printf '%s' "$CRASH_DUP" | grep -q '"cached": *true' && break
    sleep 0.1
done
printf '%s' "$CRASH_DUP" | grep -q '"cached": *true' ||
    fail "duplicate of the recovered run never hit the cache: $CRASH_DUP"
DUP_JOB=$(printf '%s' "$CRASH_DUP" | json_str id)
DUP_STREAM=$(interval_stream "$BASE_CRASH" "$DUP_JOB")
if [ "$DUP_STREAM" != "$RES_STREAM" ]; then
    diff <(printf '%s\n' "$RES_STREAM") <(printf '%s\n' "$DUP_STREAM") >&2 || true
    fail "post-crash cache hit differs from the resumed run's stream"
fi
echo "ok: duplicate of the recovered run served from cache ($DUP_JOB)"

echo "PASS: avfd end-to-end smoke"
