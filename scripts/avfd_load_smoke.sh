#!/usr/bin/env bash
# CI load-smoke for the avfd scheduler's SLO classes: boot a
# deliberately under-provisioned daemon (1 worker, queue of 2), replay
# the overload-burst workload spec at 2x acceleration with avfload,
# and let the spec's embedded SLO assertions gate the run — criticals
# are never shed, batch work is, nothing errors. avfload exits nonzero
# on any failed assertion, so the spec itself is the test.
#
# Two extra legs pin the infrastructure around the assertions:
#  - determinism: the same (spec, seed) must expand to a byte-identical
#    submit schedule twice in a row;
#  - surfacing: a job the timeline says was shed must read back as
#    state "shed" from GET /v1/jobs/{id}, and the daemon's Prometheus
#    export must count it in avfd_jobs_total{state="shed"}.
#
# A final leg replays the duplicate-heavy dup-mix workload against a
# fresh daemon: the spec's embedded assertions gate the result cache
# under load (most submissions answered from cache, sub-5ms accept
# p50), and the driver-side cached count must reconcile exactly with
# the daemon's avfd_cache_hits_total.
#
# Sibling of scripts/avfd_smoke.sh; same bare-image tooling (curl,
# grep, awk). Exits nonzero on the first failed assertion.
set -euo pipefail

ADDR="${AVFD_LOAD_ADDR:-127.0.0.1:18085}"
BASE="http://$ADDR"
SPEC="examples/workloads/overload-burst.yaml"
ACCEL="${AVFD_LOAD_ACCEL:-2}"
TMP="${TMPDIR:-/tmp}/avfd-load-smoke-$$"
AVFD_PID=""

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

cleanup() {
    [ -n "$AVFD_PID" ] && kill -9 "$AVFD_PID" 2>/dev/null || true
    [ -n "$AVFD_PID" ] && wait "$AVFD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}

cd "$(dirname "$0")/.."
mkdir -p "$TMP"
trap cleanup EXIT

go build -o "$TMP/avfd" ./cmd/avfd
go build -o "$TMP/avfload" ./cmd/avfload

# Leg 1: schedule determinism, no server needed.
"$TMP/avfload" -spec "$SPEC" -schedule "$TMP/sched1.ndjson" -q
"$TMP/avfload" -spec "$SPEC" -schedule "$TMP/sched2.ndjson" -q
cmp -s "$TMP/sched1.ndjson" "$TMP/sched2.ndjson" ||
    fail "same (spec, seed) produced different submit schedules"
[ -s "$TMP/sched1.ndjson" ] || fail "schedule expansion is empty"
echo "ok: schedule deterministic ($(wc -l <"$TMP/sched1.ndjson") lines)"

# Leg 2: the overload run. Tiny daemon so the burst actually overloads:
# one worker, queue of two.
"$TMP/avfd" -addr "$ADDR" -workers 1 -queue 2 -log-level error &
AVFD_PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/v1/healthz" >/dev/null || fail "daemon never became healthy on $ADDR"

"$TMP/avfload" -spec "$SPEC" -target "$BASE" -accel "$ACCEL" \
    -timeline "$TMP/timeline.ndjson" ||
    fail "avfload run failed its SLO assertions"
echo "ok: overload run passed the spec's SLO assertions"

# Leg 3: shed verdicts are visible on the API and in the metrics.
# (The extraction keys on the outcome's "final" verdict, not on field
# adjacency — and tolerates no-match grep exits, which pipefail would
# otherwise turn into a silent script death.)
SHED_ID=$(awk '/"final":"shed"/' "$TMP/timeline.ndjson" |
    head -1 | { grep -o '"job_id":"[^"]*"' || true; } | cut -d'"' -f4)
[ -n "$SHED_ID" ] || fail "timeline records no shed job (did the burst overload the queue?)"
STATE=$(curl -fsS "$BASE/v1/jobs/$SHED_ID" |
    awk -F'"' '{for (i = 1; i < NF; i++) if ($i == "state") {print $(i + 2); exit}}')
[ "$STATE" = shed ] || fail "job $SHED_ID reads back state '$STATE', want 'shed'"
METRICS=$(curl -fsS "$BASE/metrics")
SHED_N=$(printf '%s\n' "$METRICS" |
    awk '/^avfd_jobs_total\{state="shed"\} /{print $2}')
[ "${SHED_N:-0}" -ge 1 ] || fail "/metrics avfd_jobs_total{state=\"shed\"} = '${SHED_N:-}' not >= 1"
printf '%s\n' "$METRICS" | grep -q '^avfd_sched_class_jobs_total{class="critical",state="shed"} 0$' ||
    fail "/metrics shows critical jobs shed"
echo "ok: shed verdicts surface via GET /v1/jobs/$SHED_ID and /metrics ($SHED_N shed)"

# Leg 4: the result cache under duplicate-heavy load. Fresh daemon so
# the cache counters start from zero; the dup-mix spec asserts most
# submissions come back cached with a sub-5ms accept p50.
kill -9 "$AVFD_PID" 2>/dev/null || true
wait "$AVFD_PID" 2>/dev/null || true
AVFD_PID=""
DUP_SPEC="examples/workloads/dup-mix.yaml"
"$TMP/avfd" -addr "$ADDR" -workers 2 -queue 16 -log-level error &
AVFD_PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/v1/healthz" >/dev/null || fail "dup-mix daemon never became healthy on $ADDR"

"$TMP/avfload" -spec "$DUP_SPEC" -target "$BASE" -accel "$ACCEL" \
    -timeline "$TMP/dup-timeline.ndjson" ||
    fail "dup-mix run failed its SLO assertions"

# The driver marks an outcome cached exactly when the daemon served the
# 202 from its cache, so the two counts must agree.
DUP_CACHED=$(grep -c '"cached":true' "$TMP/dup-timeline.ndjson" || true)
CACHE_METRICS=$(curl -fsS "$BASE/metrics")
CACHE_HITS=$(printf '%s\n' "$CACHE_METRICS" | awk '/^avfd_cache_hits_total /{print $2}')
[ "${CACHE_HITS:-0}" -eq "$DUP_CACHED" ] ||
    fail "daemon cache hits ($CACHE_HITS) != timeline cached outcomes ($DUP_CACHED)"
printf '%s\n' "$CACHE_METRICS" | grep -q '^avfd_cache_hit_seconds_count [1-9]' ||
    fail "/metrics missing a populated avfd_cache_hit_seconds histogram"
echo "ok: dup-mix cache run reconciles ($DUP_CACHED cached submissions)"

echo "PASS: avfd load smoke"
