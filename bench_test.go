// Package avfsim's root benchmarks regenerate each of the paper's tables
// and figures at a reduced scale, one benchmark per artifact:
//
//	go test -bench=. -benchmem
//
// The shapes these produce (who wins, by what factor) mirror the paper;
// absolute AVF values differ because the workloads are synthetic stand-ins
// for SPEC CPU2000 (see DESIGN.md §2). cmd/avfreport renders the same
// artifacts as text tables, up to full paper scale.
package avfsim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"avfsim/internal/config"
	"avfsim/internal/core"
	"avfsim/internal/experiment"
	"avfsim/internal/obs"
	"avfsim/internal/pipeline"
	"avfsim/internal/predict"
	"avfsim/internal/sched"
	"avfsim/internal/stats"
	"avfsim/internal/workload"
)

// benchSpec trims the Quick scale further so the full bench suite stays
// in CI territory.
var benchSpec = experiment.ScaleSpec{
	Name: "bench", Scale: 0.02, M: 1000, N: 100,
	Intervals: 4, DetailIntervals: 6, Fig2M: 2000, Fig2Samples: 500,
}

// BenchmarkTable1Simulator measures the timing simulator's cycle
// throughput at the Table 1 (POWER4-like) configuration.
func BenchmarkTable1Simulator(b *testing.B) {
	prof, err := workload.ByName("mesa")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	p, err := pipeline.New(&cfg, prof.MustSource(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
	b.ReportMetric(float64(p.Retired())/float64(p.Cycle()), "ipc")
}

// BenchmarkFigure1SampleSize measures the sample-size analysis behind
// Figure 1 (N = AVF(1-AVF)/sigma^2 curves).
func BenchmarkFigure1SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sigma := range stats.Figure1Sigmas {
			curve := stats.SampleSizeCurve(sigma, 100)
			if curve[50].N == 0 {
				b.Fatal("degenerate curve")
			}
		}
	}
}

// BenchmarkFigure2PropagationCDF regenerates the error-propagation-latency
// CDFs for the register file and FXU on bzip2.
func BenchmarkFigure2PropagationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiment.NewSuite(benchSpec, 1)
		data, err := s.Figure2Data()
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 2 || data[0].Samples == 0 {
			b.Fatal("no CDF data")
		}
	}
}

// BenchmarkFigure3ErrorStats regenerates one column of Figure 3: the
// online and utilization error aggregates against the reference for one
// application across all four structures.
func BenchmarkFigure3ErrorStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.RunConfig{
			Benchmark: "mesa", Scale: benchSpec.Scale, Seed: 1,
			M: benchSpec.M, N: benchSpec.N, Intervals: benchSpec.Intervals,
		})
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, ss := range res.Series {
			if m := stats.Mean(stats.AbsErrors(ss.Online, ss.Reference)); m > worst {
				worst = m
			}
		}
		b.ReportMetric(worst, "worst-mean-abs-err")
	}
}

// BenchmarkFigure4Timeseries regenerates a detailed per-interval AVF time
// series (the Figure 4 view) for one application.
func BenchmarkFigure4Timeseries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.RunConfig{
			Benchmark: "ammp", Scale: benchSpec.Scale, Seed: 1,
			M: benchSpec.M, N: benchSpec.N, Intervals: benchSpec.DetailIntervals,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.SeriesFor(pipeline.StructIQ).Online) != benchSpec.DetailIntervals {
			b.Fatal("short series")
		}
	}
}

// BenchmarkFigure5Prediction regenerates the last-value prediction errors
// for one application across the four structures.
func BenchmarkFigure5Prediction(b *testing.B) {
	res, err := experiment.Run(experiment.RunConfig{
		Benchmark: "bzip2", Scale: benchSpec.Scale, Seed: 1,
		M: benchSpec.M, N: benchSpec.N, Intervals: benchSpec.DetailIntervals,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ss := range res.Series {
			ev, err := predict.Evaluate(predict.NewLastValue(), ss.Online, ss.Reference)
			if err != nil {
				b.Fatal(err)
			}
			_ = ev
		}
	}
}

// parallelGridConfigs is the benchmark × seed grid for
// BenchmarkParallelGrid: every workload once, at the bench scale.
func parallelGridConfigs() []experiment.RunConfig {
	var cfgs []experiment.RunConfig
	for _, bench := range workload.Names() {
		cfgs = append(cfgs, experiment.RunConfig{
			Benchmark: bench, Scale: benchSpec.Scale, Seed: 1,
			M: benchSpec.M, N: benchSpec.N, Intervals: benchSpec.Intervals,
		})
	}
	return cfgs
}

// BenchmarkParallelGrid compares the serial benchmark grid against the
// sched.Pool fan-out used by avfreport -fig3/-fig5 and cmd/avfd. The
// grid is embarrassingly parallel (independent simulations), so the
// pooled wall-time approaches serial/worker-count on multi-core hosts;
// see EXPERIMENTS.md for measured numbers.
func BenchmarkParallelGrid(b *testing.B) {
	cfgs := parallelGridConfigs()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rc := range cfgs {
				if _, err := experiment.Run(rc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("pool-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool := sched.New(sched.Options{Workers: workers, QueueCap: len(cfgs)})
				if _, err := experiment.RunGrid(context.Background(), pool, cfgs); err != nil {
					b.Fatal(err)
				}
				pool.Shutdown(context.Background())
			}
		})
	}
}

// obsBenchRun drives the Table 1 simulator plus estimator for a fixed
// cycle count, with or without an observability sink attached, and
// returns the estimator so callers can keep it live.
func obsBenchRun(b *testing.B, cycles int, sink obs.Sink) *core.Estimator {
	b.Helper()
	prof, err := workload.ByName("mesa")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	p, err := pipeline.New(&cfg, prof.MustSource(1))
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEstimator(p, core.Options{M: 1000, N: 100, Sink: sink})
	if err != nil {
		b.Fatal(err)
	}
	e.Attach()
	for i := 0; i < cycles; i++ {
		p.Step()
		e.Tick()
	}
	return e
}

// BenchmarkEstimatorObs compares the estimator hot loop with
// observability disabled (nil Sink — the default) against the full avfd
// production path (JobTracer forwarding to per-structure Prometheus
// counters). The "off" case is the one that must not regress vs a tree
// without internal/obs; see EXPERIMENTS.md for recorded numbers.
func BenchmarkEstimatorObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		obsBenchRun(b, b.N, nil)
	})
	b.Run("on", func(b *testing.B) {
		reg := obs.NewRegistry()
		tr := obs.NewJobTracer(obs.NewInjectionCounters(reg), 0)
		obsBenchRun(b, b.N, tr)
	})
}

// TestObsOverheadUnderFivePercent is the regression gate for the
// tentpole's "near-zero overhead" requirement: the full tracing path
// must cost < 5% over the untraced estimator. Min-of-several timing
// keeps the comparison robust on noisy single-CPU CI hosts.
func TestObsOverheadUnderFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation multiplies atomic-op cost; the 5% budget is for production builds")
	}
	const cycles = 150_000
	run := func(sink obs.Sink) time.Duration {
		prof, err := workload.ByName("mesa")
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		p, err := pipeline.New(&cfg, prof.MustSource(1))
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEstimator(p, core.Options{M: 1000, N: 100, Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		e.Attach()
		start := time.Now()
		for i := 0; i < cycles; i++ {
			p.Step()
			e.Tick()
		}
		return time.Since(start)
	}
	min := func(sink func() obs.Sink) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			if d := run(sink()); d < best {
				best = d
			}
		}
		return best
	}
	off := min(func() obs.Sink { return nil })
	on := min(func() obs.Sink {
		return obs.NewJobTracer(obs.NewInjectionCounters(obs.NewRegistry()), 0)
	})
	overhead := float64(on-off) / float64(off)
	t.Logf("obs-off %v, obs-on %v, overhead %.2f%%", off, on, overhead*100)
	if overhead > 0.05 {
		t.Errorf("observability overhead %.2f%% exceeds 5%% budget", overhead*100)
	}
}
