// MTTF tracking: turn per-interval online AVF estimates into the
// reliability number a designer actually budgets — mean time to failure —
// using the failure-rate model the paper's introduction builds on (raw
// soft-error rate × AVF, summed over structures).
//
// The example also answers the inverse design question: for a given MTTF
// goal, what AVF can the chip tolerate unprotected, and how often does
// the running workload exceed that budget?
//
//	go run ./examples/mttf
package main

import (
	"fmt"
	"log"

	"avfsim/internal/config"
	"avfsim/internal/experiment"
	"avfsim/internal/mttf"
	"avfsim/internal/pipeline"
)

func main() {
	const (
		fitPerBit        = 0.05 // raw soft-error rate per bit, FIT (90nm-era SRAM)
		logicBitsPerUnit = 2000 // effective latch count per execution unit
		// Fleet framing: a 2000-chip system needs a 1-year system MTTF,
		// so each chip must deliver ~2000 years against soft errors.
		mttfGoalYears = 2000.0
	)

	structs := []pipeline.Structure{
		pipeline.StructIQ, pipeline.StructReg,
		pipeline.StructFXU, pipeline.StructFPU,
	}
	res, err := experiment.Run(experiment.RunConfig{
		Benchmark:  "equake",
		Scale:      0.05,
		Seed:       11,
		M:          1000,
		N:          400,
		Intervals:  16,
		Structures: structs,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.Default()
	raw := mttf.DefaultRawFIT(&cfg, fitPerBit, logicBitsPerUnit)

	// The unprotected-AVF budget for the measured structures.
	var rawTotal float64
	for _, s := range structs {
		rawTotal += raw[s]
	}
	goalHours := mttfGoalYears * 365 * 24
	budget, err := mttf.AVFBudget(rawTotal, goalHours)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("equake: per-interval MTTF from online AVF estimates\n")
	fmt.Printf("raw rate %.1f FIT over %d structures; %g-year goal allows mean AVF <= %.3f\n\n",
		rawTotal, len(structs), mttfGoalYears, budget)
	fmt.Printf("%4s  %8s  %8s  %8s  %8s  %12s  %8s\n",
		"ivl", "iq", "reg", "fxu", "fpu", "MTTF(years)", "budget")

	over := 0
	for i := 0; i < res.Intervals; i++ {
		avf := map[pipeline.Structure]float64{}
		for _, ss := range res.Series {
			avf[ss.Structure] = ss.Online[i]
		}
		rel, err := mttf.Compute(avf, raw)
		if err != nil {
			log.Fatal(err)
		}
		years := rel.MTTFHours / (365 * 24)
		status := "ok"
		if rel.MTTFHours > 0 && rel.MTTFHours < goalHours {
			status = "OVER"
			over++
		}
		fmt.Printf("%4d  %8.3f  %8.3f  %8.3f  %8.3f  %12.1f  %8s\n",
			i, avf[pipeline.StructIQ], avf[pipeline.StructReg],
			avf[pipeline.StructFXU], avf[pipeline.StructFPU], years, status)
	}
	fmt.Printf("\n%d/%d intervals exceed the failure-rate budget; an adaptive\n", over, res.Intervals)
	fmt.Printf("controller would enable protection exactly there (see examples/adaptive)\n")

	// Whole-run breakdown: which structure dominates the failure rate.
	mean := map[pipeline.Structure]float64{}
	for _, ss := range res.Series {
		sum := 0.0
		for _, v := range ss.Online {
			sum += v
		}
		mean[ss.Structure] = sum / float64(len(ss.Online))
	}
	rel, err := mttf.Compute(mean, raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole-run effective failure rate %.2f FIT (MTTF %.1f years); contributions:\n",
		rel.TotalFIT, rel.MTTFHours/(365*24))
	for _, b := range rel.PerStruct {
		fmt.Printf("  %-5s raw %8.2f FIT x AVF %.3f = %8.2f FIT\n",
			b.Structure, b.RawFIT, b.AVF, b.EffectiveFIT)
	}
}
