// Phases: track the AVF of a strongly phased workload interval by
// interval (the Figure 4 view) and compare AVF predictors on it (the
// Figure 5 question). Shows the online estimator following real phase
// changes, and how much of the prediction error comes from abrupt phase
// boundaries versus estimator noise.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"
	"strings"

	"avfsim/internal/experiment"
	"avfsim/internal/pipeline"
	"avfsim/internal/predict"
)

func bar(v float64) string {
	n := int(v * 80)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

func main() {
	res, err := experiment.Run(experiment.RunConfig{
		Benchmark: "ammp", // three alternating phases
		Scale:     0.05,
		Seed:      3,
		M:         1000,
		N:         400,
		Intervals: 30,
		Structures: []pipeline.Structure{
			pipeline.StructReg, pipeline.StructFPU,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, ss := range res.Series {
		fmt.Printf("ammp %s AVF per interval (est vs real):\n", ss.Structure)
		for i := range ss.Online {
			fmt.Printf("%4d  est %.3f  real %.3f  |%s\n",
				i, ss.Online[i], ss.Reference[i], bar(ss.Reference[i]))
		}
		fmt.Println()

		// Compare predictors fed with the online estimates, scored
		// against the real AVF.
		ewma, _ := predict.NewEWMA(0.5)
		window, _ := predict.NewWindow(4)
		for _, p := range []predict.Predictor{predict.NewLastValue(), ewma, window} {
			ev, err := predict.Evaluate(p, ss.Online, ss.Reference)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s mean abs prediction error %.4f (max %.4f, mean AVF %.3f)\n",
				p.Name(), ev.MeanAbsError, ev.MaxAbsError, ev.MeanAVF)
		}
		fmt.Println()
	}
}
