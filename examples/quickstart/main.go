// Quickstart: wire a workload through the simulated processor with the
// online AVF estimator attached and print one AVF estimate per interval.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"avfsim/internal/config"
	"avfsim/internal/core"
	"avfsim/internal/pipeline"
	"avfsim/internal/workload"
)

func main() {
	// 1. Pick a workload. The suite mirrors the paper's eleven SPEC
	// CPU2000 benchmarks with synthetic stand-ins.
	profile, err := workload.ByName("bzip2")
	if err != nil {
		log.Fatal(err)
	}
	src := profile.MustSource(42)

	// 2. Build the processor (Table 1 defaults: POWER4-like).
	cfg := config.Default()
	proc, err := pipeline.New(&cfg, src)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Attach the online estimator: inject an emulated error every M
	// cycles, wait for it to reach a failure point, estimate
	// AVF = failures/N after N injections.
	est, err := core.NewEstimator(proc, core.Options{
		M: 1000, // cycles per injection (paper's value)
		N: 500,  // injections per estimate (paper uses 1000)
		Structures: []pipeline.Structure{
			pipeline.StructIQ, pipeline.StructReg,
			pipeline.StructFXU, pipeline.StructFPU,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	est.Attach()

	// 4. Run 8 estimation intervals.
	intervalCycles := int64(1000 * 500)
	for proc.Cycle() < 8*intervalCycles+1 {
		if !proc.Step() {
			break
		}
		est.Tick()
	}

	// 5. Read the per-interval estimates.
	fmt.Printf("%s on the Table 1 processor: %s\n\n", profile.Name, proc.Snapshot())
	fmt.Println("per-interval online AVF estimates:")
	fmt.Printf("%4s  %6s  %6s  %6s  %6s\n", "ivl", "iq", "reg", "fxu", "fpu")
	n := len(est.Estimates(pipeline.StructIQ))
	for i := 0; i < n; i++ {
		fmt.Printf("%4d", i)
		for _, s := range est.Structures() {
			fmt.Printf("  %6.3f", est.Estimates(s)[i].AVF)
		}
		fmt.Println()
	}
}
