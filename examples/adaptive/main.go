// Adaptive protection: the paper's motivating use case (Section 1). A
// dynamic controller reads the online AVF estimate each interval, predicts
// the next interval's AVF with the simple last-value predictor, and
// enables an expensive protection mechanism (think selective redundancy or
// instruction throttling, as in Soundararajan et al.) only when the
// predicted vulnerability crosses a threshold.
//
// The example reports how much protection overhead the AVF-driven policy
// saves compared to always-on protection, and what fraction of truly
// vulnerable intervals it still covers — the cost/benefit trade the paper
// argues online estimation enables.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"avfsim/internal/experiment"
	"avfsim/internal/pipeline"
	"avfsim/internal/predict"
)

const (
	// threshold is the predicted AVF above which protection switches on.
	threshold = 0.04
	intervals = 24
)

func main() {
	// Run ammp (strongly phased, so adaptation has something to exploit)
	// with the online estimator and the reference analysis attached.
	res, err := experiment.Run(experiment.RunConfig{
		// Scale 0.2 keeps each program phase several estimation
		// intervals long, which is what makes last-value prediction
		// (and hence adaptation) effective.
		Benchmark:  "ammp",
		Scale:      0.2,
		Seed:       7,
		M:          1000,
		N:          400,
		Intervals:  intervals,
		Structures: []pipeline.Structure{pipeline.StructFPU},
	})
	if err != nil {
		log.Fatal(err)
	}
	ss := res.SeriesFor(pipeline.StructFPU)

	// Drive the controller from predictions: at the end of each interval
	// the estimator reports AVF for the past interval; the controller
	// predicts the next one and decides.
	// The controller protects with a safety margin below the threshold:
	// prediction lags phase entries by one interval, so a margin buys
	// coverage at those boundaries for a little extra overhead.
	const margin = 0.5
	predictor := predict.NewLastValue()
	protected := make([]bool, intervals)
	for i := 0; i < intervals; i++ {
		protected[i] = predictor.Predict() >= margin*threshold
		predictor.Observe(ss.Online[i]) // estimate becomes available at interval end
	}

	// Score against the reference ("real") AVF.
	var onIntervals, vulnerable, covered int
	for i := 0; i < intervals; i++ {
		if protected[i] {
			onIntervals++
		}
		if ss.Reference[i] >= threshold {
			vulnerable++
			if protected[i] {
				covered++
			}
		}
	}

	fmt.Printf("adaptive protection on ammp (FPU), threshold AVF >= %.2f\n\n", threshold)
	fmt.Printf("%4s  %8s  %8s  %10s\n", "ivl", "est AVF", "real AVF", "protected")
	for i := 0; i < intervals; i++ {
		mark := ""
		if protected[i] {
			mark = "on"
		}
		fmt.Printf("%4d  %8.3f  %8.3f  %10s\n", i, ss.Online[i], ss.Reference[i], mark)
	}

	fmt.Println()
	fmt.Printf("always-on policy:   protection active %d/%d intervals (100%% overhead)\n",
		intervals, intervals)
	fmt.Printf("AVF-driven policy:  protection active %d/%d intervals (%.0f%% overhead)\n",
		onIntervals, intervals, 100*float64(onIntervals)/float64(intervals))
	if vulnerable > 0 {
		fmt.Printf("coverage: %d/%d vulnerable intervals protected (%.0f%%)\n",
			covered, vulnerable, 100*float64(covered)/float64(vulnerable))
	} else {
		fmt.Println("coverage: no interval exceeded the vulnerability threshold")
	}
	fmt.Printf("\n(the first interval after a phase change can be missed — the cost of\n" +
		"last-value prediction; see Figure 5 and examples/phases)\n")
}
