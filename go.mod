module avfsim

go 1.22
